//! Worker agents: one thread per node, executing the server's launch
//! commands by holding a slot for the task's estimated duration.
//!
//! An agent is deliberately dumb — it owns no scheduling state. It
//! registers, heartbeats, holds launched attempts until their wall
//! deadline, and reports `Completed`/`Failed` upstream. Fault scripts
//! (the same [`FaultKind`]s the sim injects) are acted out locally:
//! a `Crash` silences the agent and drops its attempts, a `Restart`
//! re-registers, a `HeartbeatDropout` suppresses beacons so the
//! server-side failure detector fires for real.

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rupam_cluster::NodeId;
use rupam_dag::TaskRef;
use rupam_faults::FaultKind;

use crate::proto::{Frame, ServeEvent, TaskFailure, WorkerCommand, WorkerMsg, WorkerReport};

/// Everything a worker-agent thread needs to run.
pub struct AgentConfig {
    /// This agent's node id.
    pub worker: NodeId,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Wall seconds per simulated second (scales fault durations).
    pub time_scale: f64,
    /// Scripted faults for this node, `(wall_offset_from_start, kind)`,
    /// sorted by offset.
    pub faults: Vec<(Duration, FaultKind)>,
    /// Seed for the flaky-OOM coin flips.
    pub seed: u64,
}

struct Held {
    task: TaskRef,
    attempt: u32,
    due: Instant,
    net_frac: f64,
    disk_frac: f64,
}

/// Occupancy the heartbeat reports: the held attempts' resource shares
/// summed and clamped to the device's capacity.
fn occupancy(held: &[Held]) -> (f64, f64) {
    let net: f64 = held.iter().map(|h| h.net_frac).sum();
    let disk: f64 = held.iter().map(|h| h.disk_frac).sum();
    (net.min(1.0), disk.min(1.0))
}

/// Spawn the agent thread. It exits on [`WorkerCommand::Shutdown`] or
/// when either channel disconnects.
pub fn spawn(
    cfg: AgentConfig,
    rx: Receiver<WorkerCommand>,
    tx: SyncSender<ServeEvent>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("rupam-worker-{}", cfg.worker.index()))
        .spawn(move || run(cfg, rx, tx))
        .expect("spawn worker agent")
}

fn run(cfg: AgentConfig, rx: Receiver<WorkerCommand>, tx: SyncSender<ServeEvent>) {
    let start = Instant::now();
    let mut seq = 0u64;
    let mut send = |body: WorkerReport| -> bool {
        let frame = Frame { seq, body };
        seq += 1;
        tx.send(ServeEvent::Worker(WorkerMsg {
            worker: cfg.worker,
            frame,
        }))
        .is_ok()
    };

    let mut held: Vec<Held> = Vec::new();
    let mut fault_idx = 0usize;
    let mut crashed = false;
    let mut slow_until: Option<(Instant, f64)> = None;
    let mut dropout_until: Option<Instant> = None;
    let mut flaky: Option<(Instant, f64)> = None;
    let mut preempt_at: Option<Instant> = None;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut next_hb = Instant::now() + cfg.heartbeat;

    if !send(WorkerReport::Register) {
        return;
    }

    loop {
        let now = Instant::now();

        // act out any scripted fault whose time has come
        while fault_idx < cfg.faults.len() && start + cfg.faults[fault_idx].0 <= now {
            let kind = cfg.faults[fault_idx].1;
            fault_idx += 1;
            let scaled = |secs: f64| Duration::from_secs_f64((secs * cfg.time_scale).max(0.0));
            match kind {
                FaultKind::Crash => {
                    crashed = true;
                    held.clear(); // attempts die silently with the node
                }
                FaultKind::Restart => {
                    crashed = false;
                    slow_until = None;
                    dropout_until = None;
                    flaky = None;
                    preempt_at = None;
                    if !send(WorkerReport::Register) {
                        return;
                    }
                }
                FaultKind::Slowdown { factor, secs } => {
                    slow_until = Some((now + scaled(secs), factor));
                }
                FaultKind::HeartbeatDropout { secs } => {
                    dropout_until = Some(now + scaled(secs));
                }
                FaultKind::FlakyOom { secs, prob } => {
                    flaky = Some((now + scaled(secs), prob));
                }
                FaultKind::Preempt { notice_secs } => {
                    // capacity reclaim: the node keeps serving through
                    // the notice window, then goes down like a crash
                    preempt_at = Some(now + scaled(notice_secs));
                }
            }
        }
        if preempt_at.is_some_and(|t| t <= now) {
            preempt_at = None;
            crashed = true;
            held.clear();
        }
        if slow_until.is_some_and(|(t, _)| t <= now) {
            slow_until = None;
        }
        if dropout_until.is_some_and(|t| t <= now) {
            dropout_until = None;
        }
        if flaky.is_some_and(|(t, _)| t <= now) {
            flaky = None;
        }

        // report attempts that finished holding their slot
        let mut i = 0;
        while i < held.len() {
            if held[i].due <= now && !crashed {
                let h = held.remove(i);
                let report = match flaky {
                    Some((_, prob)) if rng.gen_bool(prob.clamp(0.0, 1.0)) => WorkerReport::Failed {
                        task: h.task,
                        attempt: h.attempt,
                        reason: TaskFailure::Oom,
                    },
                    _ => WorkerReport::Completed {
                        task: h.task,
                        attempt: h.attempt,
                    },
                };
                if !send(report) {
                    return;
                }
            } else {
                i += 1;
            }
        }

        // heartbeat, unless crashed or partitioned
        if next_hb <= now {
            next_hb = now + cfg.heartbeat;
            let (net_util, disk_util) = occupancy(&held);
            if !crashed
                && dropout_until.is_none()
                && !send(WorkerReport::Heartbeat {
                    net_util,
                    disk_util,
                })
            {
                return;
            }
        }

        // sleep until the next thing that could matter
        let mut deadline = next_hb;
        if !crashed {
            for h in &held {
                deadline = deadline.min(h.due);
            }
        }
        if fault_idx < cfg.faults.len() {
            deadline = deadline.min(start + cfg.faults[fault_idx].0);
        }
        if let Some(t) = preempt_at {
            deadline = deadline.min(t);
        }
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(WorkerCommand::Launch {
                task,
                attempt,
                use_gpu: _,
                hold,
                net_frac,
                disk_frac,
            }) => {
                if !crashed {
                    let factor = slow_until.map_or(1.0, |(_, f)| f.max(1.0));
                    held.push(Held {
                        task,
                        attempt,
                        due: Instant::now() + hold.mul_f64(factor),
                        net_frac,
                        disk_frac,
                    });
                }
            }
            Ok(WorkerCommand::Preempt { task }) => {
                if let Some(pos) = held.iter().position(|h| h.task == task) {
                    let h = held.remove(pos);
                    if !send(WorkerReport::Failed {
                        task: h.task,
                        attempt: h.attempt,
                        reason: TaskFailure::Preempted,
                    }) {
                        return;
                    }
                }
            }
            Ok(WorkerCommand::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
