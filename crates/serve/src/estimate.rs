//! Deterministic task-duration estimation for worker agents.
//!
//! Serve-mode workers do not execute Spark tasks; they *hold a slot*
//! for the time the task would take — a pure function of the task's
//! demand vector and the node's hardware, mirroring the sim cost
//! model's uncontended phase times. Being a pure function is what makes
//! serve runs replayable: the estimate feeds both the wall-clock hold
//! sent to the agent and the per-category [`TaskBreakdown`] banked into
//! the scheduler's `DB_task_char`, and both are identical in replay.

use rupam_cluster::node::NodeSpec;
use rupam_dag::task::TaskDemand;
use rupam_metrics::breakdown::{BreakdownCategory, TaskBreakdown};
use rupam_simcore::time::SimDuration;

/// Uncontended execution-time estimate of one attempt on `spec`.
///
/// Returns the total duration plus its per-category breakdown (the
/// scheduler's characterization input). The estimate is intentionally
/// simpler than the sim's fluid contention model — a live service has
/// no global view of co-located phases — but uses the same hardware
/// axes, so RUPAM's bottleneck classification stays meaningful.
pub fn estimate(
    demand: &TaskDemand,
    spec: &NodeSpec,
    use_gpu: bool,
) -> (SimDuration, TaskBreakdown) {
    let mut breakdown = TaskBreakdown::new();
    let mut total = 0.0f64;
    let mut add = |cat: BreakdownCategory, secs: f64, total: &mut f64| {
        if secs > 0.0 {
            breakdown.add(cat, SimDuration::from_secs_f64(secs));
            *total += secs;
        }
    };

    add(
        BreakdownCategory::HdfsDisk,
        demand.input_bytes.as_f64() / spec.disk.read_bw,
        &mut total,
    );
    add(
        BreakdownCategory::ShuffleNet,
        demand.shuffle_read.as_f64() / spec.net_bw,
        &mut total,
    );
    let gpu = use_gpu && spec.gpus > 0 && demand.gpu_kernels > 0.0;
    let cpu_work = if gpu {
        demand.compute
    } else {
        demand.compute + demand.gpu_kernels
    };
    add(
        BreakdownCategory::Compute,
        cpu_work / spec.cpu_ghz
            + if gpu {
                demand.gpu_kernels / spec.gpu_gcps
            } else {
                0.0
            },
        &mut total,
    );
    add(
        BreakdownCategory::ShuffleWrite,
        demand.shuffle_write.as_f64() / spec.disk.write_bw,
        &mut total,
    );
    add(
        BreakdownCategory::Serialization,
        demand.output_bytes.as_f64() / spec.net_bw,
        &mut total,
    );

    (
        SimDuration::from_secs_f64(total).max(SimDuration(1)),
        breakdown,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_cluster::ClusterSpec;
    use rupam_cluster::NodeId;
    use rupam_simcore::units::ByteSize;

    fn demand() -> TaskDemand {
        TaskDemand {
            compute: 10.0,
            gpu_kernels: 40.0,
            input_bytes: ByteSize::mib(128),
            shuffle_read: ByteSize::ZERO,
            shuffle_write: ByteSize::mib(16),
            output_bytes: ByteSize::ZERO,
            peak_mem: ByteSize::mib(256),
            cached_bytes: ByteSize::ZERO,
        }
    }

    #[test]
    fn gpu_execution_is_faster_on_gpu_nodes() {
        let cluster = ClusterSpec::hydra();
        let hulk = (0..cluster.len())
            .map(NodeId)
            .find(|&n| cluster.node(n).gpus > 0)
            .expect("hydra has GPU nodes");
        let spec = cluster.node(hulk);
        let (cpu, _) = estimate(&demand(), spec, false);
        let (gpu, _) = estimate(&demand(), spec, true);
        assert!(gpu < cpu, "gpu {gpu} should beat cpu {cpu}");
    }

    #[test]
    fn estimate_is_pure_and_positive() {
        let cluster = ClusterSpec::hydra();
        let spec = cluster.node(NodeId(0));
        let (a, ba) = estimate(&demand(), spec, false);
        let (b, bb) = estimate(&demand(), spec, false);
        assert_eq!(a, b);
        assert_eq!(
            ba.get(BreakdownCategory::Compute),
            bb.get(BreakdownCategory::Compute)
        );
        assert!(a > SimDuration(0));
    }
}
