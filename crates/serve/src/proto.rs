//! The serve-mode RPC protocol.
//!
//! Worker agents and the client talk to the scheduler server over typed
//! messages on in-process channels. The protocol is deliberately shaped
//! like a miniature network RPC layer — every message travels inside a
//! sequence-numbered [`Frame`] — so that the in-process transport could
//! be swapped for a socket without touching the driver: the driver only
//! ever sees a totally ordered stream of [`ServeEvent`]s popped from its
//! [`rupam_simcore::source::EventSource`].

use std::time::Duration;

use rupam_cluster::NodeId;
use rupam_dag::app::JobId;
use rupam_dag::TaskRef;

/// A sequence-numbered protocol envelope. `seq` is per-connection and
/// monotone; the server uses it only for diagnostics (ordering is
/// established by the event source's stamps, not by sender sequence).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<T> {
    /// Sender-assigned monotone sequence number.
    pub seq: u64,
    /// The payload.
    pub body: T,
}

/// Why a worker reported an attempt as failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFailure {
    /// The attempt died of a (simulated) out-of-memory kill.
    Oom,
    /// The server asked for the attempt to be preempted
    /// ([`WorkerCommand::Preempt`], RUPAM's memory-straggler relocation).
    Preempted,
}

/// What a worker agent reports upstream to the server.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerReport {
    /// The agent came up (or came back after a restart) and is ready
    /// for launches.
    Register,
    /// Periodic liveness beacon; the failure detector times these. The
    /// payload carries the worker's own resource occupancy so the
    /// scheduler's heterogeneity-aware scoring sees real utilisation
    /// signals (the paper's collector piggy-backs metrics on heartbeats
    /// the same way).
    Heartbeat {
        /// Fraction of the NIC the held attempts occupy, `0.0..=1.0`.
        net_util: f64,
        /// Fraction of disk bandwidth the held attempts occupy,
        /// `0.0..=1.0`.
        disk_util: f64,
    },
    /// An attempt ran to completion.
    Completed {
        /// The finished task.
        task: TaskRef,
        /// Attempt number the server launched it with.
        attempt: u32,
    },
    /// An attempt ended without producing output.
    Failed {
        /// The failed task.
        task: TaskRef,
        /// Attempt number the server launched it with.
        attempt: u32,
        /// Why it failed.
        reason: TaskFailure,
    },
}

/// One framed worker report with its origin.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerMsg {
    /// The reporting worker (same id space as the catalog cluster).
    pub worker: NodeId,
    /// The framed report.
    pub frame: Frame<WorkerReport>,
}

/// What the client API sends to the server.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientRequest {
    /// Make a catalog job runnable now. Jobs may be submitted in any
    /// order; each at most once.
    Submit {
        /// The stream job to admit.
        job: JobId,
    },
    /// No further submissions will come: finish everything already
    /// submitted, then shut down gracefully.
    Drain,
}

/// Everything the serve driver can pop from its event source: external
/// inputs (worker reports, client requests) and its own internal timer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeEvent {
    /// A worker report arrived.
    Worker(WorkerMsg),
    /// A client request arrived.
    Client(Frame<ClientRequest>),
    /// The server's periodic tick: failure-detector evaluation and the
    /// livelock/max-wall check (the live analogue of the sim engine's
    /// heartbeat). Offer rounds are *not* tied to ticks — see
    /// [`ServeEvent::Offer`].
    Tick,
    /// A coalesced offer round is due. The driver schedules this for
    /// itself whenever dispatchable state changes (never sooner than
    /// the coalescing min-interval after the previous round); it is an
    /// internal timer, so it never appears in the input log — replay
    /// re-derives the identical schedule from the logged externals.
    Offer,
}

/// What the server sends down to a worker agent.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerCommand {
    /// Run one task attempt.
    Launch {
        /// The task to run.
        task: TaskRef,
        /// Attempt number (echoed back in `Completed`/`Failed`).
        attempt: u32,
        /// Execute GPU kernels on a GPU.
        use_gpu: bool,
        /// Wall-clock execution time, already scaled by the server's
        /// `time_scale` (the agent just holds the slot this long).
        hold: Duration,
        /// Share of the attempt's lifetime spent on the NIC (shuffle
        /// reads + output serialisation, per the server's estimate).
        /// The agent sums these over held attempts into the
        /// [`WorkerReport::Heartbeat`] `net_util` payload.
        net_frac: f64,
        /// Share of the attempt's lifetime spent on disk (HDFS reads +
        /// shuffle writes); aggregated into `disk_util` likewise.
        disk_frac: f64,
    },
    /// Abandon a running attempt and report it `Failed { Preempted }`.
    Preempt {
        /// The task whose attempt dies.
        task: TaskRef,
    },
    /// Drain complete: stop heartbeating and exit.
    Shutdown,
}
