//! The serve-mode server: wires a [`ServeDriver`] on a wall-clock event
//! source to a fleet of worker-agent threads and a client handle.
//!
//! ```text
//!   ClientHandle ──┐                         ┌──> worker 0 (thread)
//!                  ├─ sync_channel ─> driver ─┤        │
//!   worker reports ┘   (bounded)    (thread)  └──> worker N
//!        ^ ______________ reports ____________________│
//! ```
//!
//! All transport is in-process channels; the framing in [`crate::proto`]
//! keeps the boundary RPC-shaped. The driver logs every external event
//! it sequences, and [`ServerHandle::wait`] hands that log back so
//! callers can run the replay oracle.
//!
//! [`ServeDriver`]: crate::driver::ServeDriver

use std::sync::mpsc::{channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rupam_cluster::ClusterSpec;
use rupam_dag::app::JobId;
use rupam_dag::MergedStream;
use rupam_exec::scheduler::Scheduler;
use rupam_faults::FaultScript;
use rupam_simcore::source::WallClockSource;
use rupam_simcore::SimTime;

use crate::agent::{self, AgentConfig};
use crate::driver::{Outbox, ServeConfig, ServeDriver, ServeReport};
use crate::error::ServeError;
use crate::proto::{ClientRequest, Frame, ServeEvent};

/// Client side of the service: submit stream jobs, then drain.
#[derive(Clone)]
pub struct ClientHandle {
    tx: SyncSender<ServeEvent>,
    seq: u64,
}

impl ClientHandle {
    fn send(&mut self, body: ClientRequest) -> Result<(), ServeError> {
        let frame = Frame {
            seq: self.seq,
            body,
        };
        self.seq += 1;
        self.tx
            .send(ServeEvent::Client(frame))
            .map_err(|_| ServeError::Disconnected("client"))
    }

    /// Make catalog job `job` runnable now. Blocks if the server's input
    /// channel is full (backpressure).
    pub fn submit(&mut self, job: JobId) -> Result<(), ServeError> {
        self.send(ClientRequest::Submit { job })
    }

    /// Announce that no further submissions will come; the server
    /// finishes outstanding work and shuts down.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        self.send(ClientRequest::Drain)
    }
}

/// What a finished serve run hands back.
pub struct ServeOutcome {
    /// Aggregate statistics and the decision-trace digest.
    pub report: ServeReport,
    /// Every external input in sequencing order with its stamp — the
    /// replay oracle's input.
    pub log: Vec<(SimTime, ServeEvent)>,
}

/// A running serve instance: the driver thread, its worker fleet, and a
/// client handle.
pub struct ServerHandle {
    /// Handle for submitting jobs and draining.
    pub client: ClientHandle,
    driver: JoinHandle<DriverResult>,
    workers: Vec<JoinHandle<()>>,
}

/// What the driver thread hands back: the run's report plus the stamped
/// input log the replay oracle consumes.
type DriverResult = Result<(ServeReport, Vec<(SimTime, ServeEvent)>), ServeError>;

impl ServerHandle {
    /// Block until the service drains (or aborts) and collect the
    /// outcome. Joins every thread the server spawned.
    pub fn wait(self) -> Result<ServeOutcome, ServeError> {
        let ServerHandle {
            client,
            driver,
            workers,
        } = self;
        drop(client); // release our sender so drain can complete the source
        let result = driver
            .join()
            .map_err(|p| ServeError::Thread(panic_message(p)))?;
        for w in workers {
            let _ = w.join();
        }
        let (report, log) = result?;
        Ok(ServeOutcome { report, log })
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// Start the live service: spawns the driver thread plus one agent
/// thread per cluster node, with `faults` acted out by the agents at
/// script time × `cfg.time_scale`.
pub fn start(
    cluster: Arc<ClusterSpec>,
    catalog: Arc<MergedStream>,
    mut sched: Box<dyn Scheduler + Send>,
    cfg: ServeConfig,
    faults: &FaultScript,
) -> ServerHandle {
    let (event_tx, source) = WallClockSource::new(cfg.channel_capacity);

    let mut worker_txs = Vec::with_capacity(cluster.len());
    let mut workers = Vec::with_capacity(cluster.len());
    for (id, _) in cluster.iter() {
        let (cmd_tx, cmd_rx) = channel();
        worker_txs.push(cmd_tx);
        let node_faults: Vec<(Duration, rupam_faults::FaultKind)> = faults
            .events()
            .iter()
            .filter(|f| f.node == id)
            .map(|f| {
                let wall = Duration::from_secs_f64(
                    SimTime(f.at.0).since(SimTime::ZERO).as_secs_f64() * cfg.time_scale,
                );
                (wall, f.kind)
            })
            .collect();
        let agent_cfg = AgentConfig {
            worker: id,
            heartbeat: cfg.worker_heartbeat,
            time_scale: cfg.time_scale,
            faults: node_faults,
            seed: 0x5E17E + id.index() as u64,
        };
        workers.push(agent::spawn(agent_cfg, cmd_rx, event_tx.clone()));
    }

    let client = ClientHandle {
        tx: event_tx,
        seq: 0,
    };

    let driver = std::thread::Builder::new()
        .name("rupam-serve-driver".into())
        .spawn(move || {
            let mut source = source;
            let mut drv = ServeDriver::new(
                &cluster,
                &catalog,
                &cfg,
                sched.as_mut(),
                // the driver pops from the wall source and sends commands
                // to the real worker inboxes
                &mut source,
                Outbox::Live(worker_txs),
            );
            let run = drv.run();
            let report = drv.report();
            drop(drv);
            let log = source.take_log();
            match run {
                Ok(()) => Ok((report, log)),
                Err(e) => Err(ServeError::Engine(e)),
            }
        })
        .expect("spawn serve driver");

    ServerHandle {
        client,
        driver,
        workers,
    }
}
