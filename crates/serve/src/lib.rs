//! `rupam-serve` — the RUPAM scheduler run as a **live async service**.
//!
//! The sim engine proves the scheduler's decisions are good; this crate
//! proves the same engine logic survives contact with real concurrency.
//! It hosts the scheduling loop on a [`WallClockSource`] instead of a
//! [`Calendar`]: worker agents are threads that register, heartbeat and
//! report completions over an in-process RPC protocol ([`proto`]), and a
//! client API submits stream jobs while the service runs.
//!
//! The central design bet is the **replay oracle**: the live driver
//! logs every external input with the timestamp it was sequenced at,
//! and [`replay`] re-runs the identical driver over a deterministic
//! [`Calendar`] pre-loaded with that log. Because the driver's state
//! transitions depend only on the popped event order — and the two
//! sources guarantee the same order for the same log — the decision
//! trace digests must match byte for byte. A digest mismatch means the
//! driver snuck in a dependency on real time or thread interleaving,
//! which is exactly the class of bug live schedulers are hardest to
//! test for.
//!
//! [`WallClockSource`]: rupam_simcore::source::WallClockSource
//! [`Calendar`]: rupam_simcore::Calendar

#![warn(missing_docs)]

pub mod agent;
pub mod driver;
pub mod error;
pub mod estimate;
pub mod proto;
pub mod replay;
pub mod server;
pub mod testbed;

pub use driver::{ServeConfig, ServeReport};
pub use error::ServeError;
pub use proto::{ClientRequest, ServeEvent, TaskFailure, WorkerCommand, WorkerMsg, WorkerReport};
pub use replay::replay;
pub use server::{ClientHandle, ServeOutcome, ServerHandle};
