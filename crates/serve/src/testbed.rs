//! Shared fixtures for serve-mode tests, the CLI smoke mode, and the
//! sustained-load benchmarks: synthetic fleets and job catalogs sized
//! for pressure testing rather than paper fidelity.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{AppBuilder, StageKind};
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::{DataLayout, JobStream, MergedStream};
use rupam_simcore::units::ByteSize;
use rupam_simcore::SimTime;

/// A Hydra-style fleet of `n` nodes keeping the paper's rough class
/// ratio (¾ thor CPU nodes, ⅛ hulk GPU nodes, the rest big-memory
/// stack nodes).
pub fn build_fleet(n: usize) -> ClusterSpec {
    assert!(n >= 8, "fleet needs at least 8 nodes for a full class mix");
    let thor = n * 3 / 4;
    let hulk = n / 8;
    let stack = n - thor - hulk;
    ClusterSpec::hydra_mix(thor, hulk, stack)
}

/// A catalog of `jobs` independent single-stage jobs with
/// `tasks_per_job` compute-bound tasks each, all nominally arriving at
/// t=0 (actual admission happens via client `Submit`s). Generated
/// inputs keep the pressure on the offer path rather than on data
/// placement.
pub fn pressure_stream(jobs: usize, tasks_per_job: usize) -> MergedStream {
    pressure_stream_sized(jobs, tasks_per_job, 20.0, ByteSize::mib(256))
}

/// [`pressure_stream`] with explicit per-task compute (gigacycles) and
/// peak memory. The saturation benchmark uses a large `peak_mem` so
/// executor memory — not task count — bounds concurrency, building a
/// deep pending backlog.
pub fn pressure_stream_sized(
    jobs: usize,
    tasks_per_job: usize,
    compute: f64,
    peak_mem: ByteSize,
) -> MergedStream {
    let mut stream = JobStream::new();
    for j in 0..jobs {
        let mut b = AppBuilder::new(format!("pressure-{j}"));
        let job = b.begin_job();
        let tasks: Vec<TaskTemplate> = (0..tasks_per_job)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute,
                    gpu_kernels: if i % 4 == 0 { compute * 1.5 } else { 0.0 },
                    input_bytes: ByteSize::ZERO,
                    shuffle_read: ByteSize::ZERO,
                    shuffle_write: ByteSize::ZERO,
                    output_bytes: ByteSize::mib(1),
                    peak_mem,
                    cached_bytes: ByteSize::ZERO,
                },
            })
            .collect();
        b.add_stage(
            job,
            "result",
            "pressure/result",
            StageKind::Result,
            Vec::new(),
            tasks,
        );
        stream.push(
            format!("pressure-{j}"),
            b.build(),
            DataLayout::new(),
            SimTime::ZERO,
        );
    }
    stream.merge()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sizes_add_up() {
        for n in [8, 64, 256] {
            assert_eq!(build_fleet(n).len(), n);
        }
    }

    #[test]
    fn pressure_stream_shape() {
        let s = pressure_stream(3, 5);
        assert_eq!(s.jobs.len(), 3);
        assert_eq!(s.app.stages.len(), 3);
        assert!(s.app.stages.iter().all(|st| st.tasks.len() == 5));
    }
}
