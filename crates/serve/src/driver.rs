//! The serve driver: the engine's offer loop re-hosted on a live
//! [`EventSource`].
//!
//! The driver owns the authoritative scheduling state (pending/running
//! tasks, stage lineage, per-node memory, failure detector) exactly like
//! the sim engine's `ClusterState`, but *time and execution* live
//! elsewhere: task execution happens in worker agents, and "what fires
//! next" comes from the event source — a [`WallClockSource`] in live
//! mode, a [`Calendar`] in replay mode. Because every state transition
//! is driven by a popped `(SimTime, ServeEvent)` and nothing else, the
//! trace digest of a live run is a pure function of its input log: the
//! replay harness re-runs this same driver over the logged events and
//! must produce a byte-identical digest.
//!
//! [`WallClockSource`]: rupam_simcore::source::WallClockSource
//! [`Calendar`]: rupam_simcore::Calendar

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::time::Duration;

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{JobId, StageId, StageKind};
use rupam_dag::lineage::StageTracker;
use rupam_dag::task::InputSource;
use rupam_dag::{Locality, MergedStream, TaskRef};
use rupam_exec::config::SimConfig;
use rupam_exec::scheduler::{
    Command, NodeView, OfferInput, PendingTaskView, RunningTaskView, Scheduler,
};
use rupam_exec::EngineError;
use rupam_faults::{FailureDetector, NodeHealth};
use rupam_metrics::breakdown::TaskBreakdown;
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::trace::{AbortCause, TraceBuffer, TraceEvent, TraceEventKind};
use rupam_simcore::source::EventSource;
use rupam_simcore::stats::quantile;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use crate::estimate::estimate;
use crate::proto::{ClientRequest, ServeEvent, TaskFailure, WorkerCommand, WorkerReport};

/// Reducer preference threshold: a node holding at least this fraction
/// of a reduce stage's map output is `NODE_LOCAL` (same rule as the sim
/// engine).
const REDUCER_PREF_FRACTION: f64 = 0.20;

/// Tunables of the live service.
#[derive(Clone)]
pub struct ServeConfig {
    /// Server tick period (detector evaluation + offer round cadence) —
    /// the live analogue of `EngineConfig::heartbeat`.
    pub tick: Duration,
    /// Worker heartbeat period.
    pub worker_heartbeat: Duration,
    /// Wall seconds per simulated second of estimated task duration
    /// (`0.001` = tasks run 1000× faster than their sim estimate).
    /// Fault-script times are scaled by the same factor.
    pub time_scale: f64,
    /// Bound of the server's input channel; producers block when the
    /// driver falls behind (backpressure).
    pub channel_capacity: usize,
    /// Abort the run if the wall clock passes this point (livelock
    /// safety net; checked on ticks, deterministic under replay because
    /// tick stamps are part of the event order).
    pub max_wall: Option<Duration>,
    /// Sim tunables reused by the live mode: memory sizing/clamps
    /// (`mem`), retry budget, and the failure-detector thresholds
    /// (`faults.suspect_after` / `faults.dead_after`, interpreted as
    /// *wall* durations here).
    pub sim: SimConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tick: Duration::from_millis(20),
            worker_heartbeat: Duration::from_millis(20),
            time_scale: 0.001,
            channel_capacity: 4096,
            max_wall: Some(Duration::from_secs(120)),
            sim: SimConfig::default(),
        }
    }
}

/// Where launch/preempt/shutdown commands go: real worker inboxes in
/// live mode, nowhere in replay (the logged reports already tell the
/// replay driver everything the workers did).
pub(crate) enum Outbox {
    /// One unbounded command channel per worker, indexed by node id.
    Live(Vec<Sender<WorkerCommand>>),
    /// Replay: commands are decisions already reflected in the log.
    Replay,
}

impl Outbox {
    fn send(&self, worker: NodeId, cmd: WorkerCommand) {
        if let Outbox::Live(txs) = self {
            // a worker that already exited just misses the command — the
            // same as a lost RPC to a dead node
            let _ = txs[worker.index()].send(cmd);
        }
    }
}

struct RunningSt {
    task: TaskRef,
    attempt: u32,
    launched_at: SimTime,
    peak_mem: ByteSize,
    use_gpu: bool,
    locality: Locality,
    breakdown: TaskBreakdown,
}

enum TaskSt {
    Pending { attempt_no: u32, since: SimTime },
    Running { node: NodeId, attempt: u32 },
    Done,
}

struct StageSt {
    released: bool,
    tasks: Vec<TaskSt>,
    map_out_per_node: Vec<f64>,
    map_out_total: f64,
    winners: Vec<Option<(NodeId, u32)>>,
}

struct NodeSt {
    registered: bool,
    executor_mem: ByteSize,
    mem_in_use: ByteSize,
    running: Vec<RunningSt>,
}

struct JobSt {
    submitted: Option<SimTime>,
    completed: Option<SimTime>,
}

/// Aggregate outcome of one serve run (live or replay).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Decision-trace digest — the replay-equivalence oracle value.
    pub digest: u64,
    /// Total trace events recorded into the digest.
    pub events_recorded: u64,
    /// Jobs the client submitted.
    pub jobs_submitted: usize,
    /// Submitted jobs that ran to completion.
    pub jobs_completed: usize,
    /// Launch commands applied.
    pub launched: u64,
    /// Attempts completed successfully.
    pub completed: u64,
    /// Attempts that failed (fault kills, OOMs, preemptions).
    pub failed: u64,
    /// Tasks killed by recovery whose re-execution never completed —
    /// must be zero on a clean drain.
    pub lost_tasks: usize,
    /// Highest number of concurrently pending tasks seen at an offer
    /// round.
    pub max_pending: usize,
    /// Median dispatch latency (stage release / re-queue → launch), µs.
    pub dispatch_p50_us: u64,
    /// p99 dispatch latency, µs.
    pub dispatch_p99_us: u64,
    /// Timestamp of the last handled event (wall µs since server start
    /// in live mode).
    pub makespan: SimDuration,
    /// True iff the run drained without aborting and every submitted
    /// job completed.
    pub clean: bool,
}

/// The serve-mode scheduling loop over any [`EventSource`].
pub(crate) struct ServeDriver<'a, S: EventSource<ServeEvent>> {
    catalog: &'a MergedStream,
    cluster: &'a ClusterSpec,
    cfg: &'a ServeConfig,
    sched: &'a mut (dyn Scheduler + Send),
    pub(crate) source: S,
    outbox: Outbox,
    now: SimTime,
    nodes: Vec<NodeSt>,
    stages: Vec<StageSt>,
    jobs: Vec<JobSt>,
    tracker: StageTracker,
    detector: FailureDetector,
    trace: TraceBuffer,
    round: u64,
    need_offers: bool,
    draining: bool,
    aborted: bool,
    kill_pending: HashMap<TaskRef, SimTime>,
    observed_peak: HashMap<(StageId, usize), ByteSize>,
    dispatch_us: Vec<u64>,
    max_pending: usize,
    launched: u64,
    completed: u64,
    failed: u64,
}

impl<'a, S: EventSource<ServeEvent>> ServeDriver<'a, S> {
    pub(crate) fn new(
        cluster: &'a ClusterSpec,
        catalog: &'a MergedStream,
        cfg: &'a ServeConfig,
        sched: &'a mut (dyn Scheduler + Send),
        source: S,
        outbox: Outbox,
    ) -> Self {
        sched.on_app_start(&catalog.app, cluster);
        let nodes = cluster
            .iter()
            .map(|(id, spec)| {
                let requested = sched.executor_memory(cluster, id);
                let ceiling = spec.mem.saturating_sub(cfg.sim.mem.os_reserved);
                NodeSt {
                    registered: false,
                    executor_mem: requested.min(ceiling),
                    mem_in_use: ByteSize::ZERO,
                    running: Vec::new(),
                }
            })
            .collect();
        let stages = catalog
            .app
            .stages
            .iter()
            .map(|s| StageSt {
                released: false,
                tasks: (0..s.tasks.len())
                    .map(|_| TaskSt::Pending {
                        attempt_no: 0,
                        since: SimTime::ZERO,
                    })
                    .collect(),
                map_out_per_node: vec![0.0; cluster.len()],
                map_out_total: 0.0,
                winners: vec![None; s.tasks.len()],
            })
            .collect();
        let chains: Vec<std::ops::Range<usize>> =
            catalog.jobs.iter().map(|j| j.app_jobs.clone()).collect();
        ServeDriver {
            cluster,
            catalog,
            cfg,
            sched,
            source,
            outbox,
            now: SimTime::ZERO,
            nodes,
            stages,
            jobs: catalog
                .jobs
                .iter()
                .map(|_| JobSt {
                    submitted: None,
                    completed: None,
                })
                .collect(),
            tracker: StageTracker::new_stream(&catalog.app, &chains),
            detector: FailureDetector::new(cluster.len(), &cfg.sim.faults, SimTime::ZERO),
            trace: TraceBuffer::new(rupam_metrics::trace::DEFAULT_TRACE_CAPACITY),
            round: 0,
            need_offers: false,
            draining: false,
            aborted: false,
            kill_pending: HashMap::new(),
            observed_peak: HashMap::new(),
            dispatch_us: Vec::new(),
            max_pending: 0,
            launched: 0,
            completed: 0,
            failed: 0,
        }
    }

    fn record(&mut self, kind: TraceEventKind) {
        self.trace.record(TraceEvent {
            at: self.now,
            round: self.round,
            kind,
        });
    }

    fn finished(&self) -> bool {
        if self.aborted {
            return true;
        }
        let submitted_done = self
            .jobs
            .iter()
            .all(|j| j.submitted.is_none() || j.completed.is_some());
        let all_submitted = self.jobs.iter().all(|j| j.submitted.is_some());
        submitted_done
            && (self.draining || all_submitted)
            && (self.draining || !self.jobs.is_empty())
    }

    /// Run to drain (or abort). [`EngineError::SourceDisconnected`] means
    /// every producer hung up while submitted work was incomplete.
    pub(crate) fn run(&mut self) -> Result<(), EngineError> {
        let tick = SimDuration((self.cfg.tick.as_micros() as u64).max(1));
        self.source.schedule(self.now + tick, ServeEvent::Tick);
        while !self.finished() {
            let Some((t, ev)) = self.source.pop() else {
                self.aborted = true;
                self.record(TraceEventKind::Aborted {
                    cause: AbortCause::SourceDisconnected,
                    task: None,
                });
                self.shutdown_workers();
                return Err(EngineError::SourceDisconnected { at: self.now });
            };
            self.now = t;
            match ev {
                ServeEvent::Tick => {
                    self.sched.on_heartbeat(self.now);
                    self.evaluate_detector();
                    if let Some(max) = self.cfg.max_wall {
                        if self.now >= SimTime(max.as_micros() as u64) && !self.finished() {
                            self.aborted = true;
                            self.record(TraceEventKind::Aborted {
                                cause: AbortCause::Livelock,
                                task: None,
                            });
                            break;
                        }
                    }
                    self.source.schedule(self.now + tick, ServeEvent::Tick);
                    // offers batch on ticks, like the sim engine batches
                    // them on heartbeats: one round absorbs every report
                    // and submission since the last, keeping the event
                    // loop O(1) per external input under a 10k-task
                    // backlog instead of running a round per completion
                    if self.need_offers && !self.aborted {
                        self.need_offers = false;
                        self.offer_round();
                    }
                }
                ServeEvent::Client(frame) => self.handle_client(frame.body),
                ServeEvent::Worker(msg) => self.handle_worker(msg.worker, msg.frame.body),
            }
        }
        self.shutdown_workers();
        Ok(())
    }

    fn shutdown_workers(&self) {
        for i in 0..self.nodes.len() {
            self.outbox.send(NodeId(i), WorkerCommand::Shutdown);
        }
    }

    // ---- external inputs ------------------------------------------------

    fn handle_client(&mut self, req: ClientRequest) {
        match req {
            ClientRequest::Submit { job } => self.submit_job(job),
            ClientRequest::Drain => self.draining = true,
        }
    }

    fn submit_job(&mut self, job: JobId) {
        let Some(j) = self.jobs.get_mut(job.index()) else {
            return; // unknown job id: ignore like a malformed RPC
        };
        if j.submitted.is_some() {
            return; // duplicate submission
        }
        j.submitted = Some(self.now);
        self.record(TraceEventKind::JobSubmitted { job });
        let stages: Vec<StageId> = (0..self.stages.len())
            .map(StageId)
            .filter(|s| self.catalog.stage_jobs[s.index()] == job)
            .collect();
        self.sched.on_job_submitted(job, &stages, self.now);
        self.tracker.arrive(job.index());
        self.release_ready();
        self.need_offers = true;
    }

    fn handle_worker(&mut self, worker: NodeId, report: WorkerReport) {
        if worker.index() >= self.nodes.len() {
            return;
        }
        match report {
            WorkerReport::Register => {
                let fresh = !self.nodes[worker.index()].registered;
                self.nodes[worker.index()].registered = true;
                if fresh {
                    let mem = self.nodes[worker.index()].executor_mem;
                    self.record(TraceEventKind::ExecutorSized { node: worker, mem });
                }
                self.observe_liveness(worker);
                self.need_offers = true;
            }
            WorkerReport::Heartbeat => self.observe_liveness(worker),
            WorkerReport::Completed { task, attempt } => self.on_completed(worker, task, attempt),
            WorkerReport::Failed {
                task,
                attempt,
                reason,
            } => self.on_failed(worker, task, attempt, reason),
        }
    }

    /// Feed the failure detector; a beacon from a declared-dead node
    /// re-admits it (the sim engine's re-admission path).
    fn observe_liveness(&mut self, worker: NodeId) {
        if self.detector.is_dead(worker) {
            self.detector.revive(worker, self.now);
            self.record(TraceEventKind::NodeRecovered { node: worker });
            self.need_offers = true;
        } else {
            self.detector.observe(worker, self.now);
        }
    }

    fn take_running(&mut self, worker: NodeId, task: TaskRef, attempt: u32) -> Option<RunningSt> {
        let node = &mut self.nodes[worker.index()];
        let pos = node
            .running
            .iter()
            .position(|r| r.task == task && r.attempt == attempt)?;
        let entry = node.running.remove(pos);
        debug_assert!(matches!(
            self.stages[task.stage.index()].tasks[task.index],
            TaskSt::Running { node: n, attempt: a } if n == worker && a == attempt
        ));
        node.mem_in_use = node.mem_in_use.saturating_sub(entry.peak_mem);
        Some(entry)
    }

    fn on_completed(&mut self, worker: NodeId, task: TaskRef, attempt: u32) {
        // a report for an attempt the server no longer tracks (node was
        // declared dead and the task re-queued, or a preempt raced a
        // completion) is stale — drop it, the authoritative copy wins
        let Some(entry) = self.take_running(worker, task, attempt) else {
            return;
        };
        let sidx = task.stage.index();
        self.stages[sidx].tasks[task.index] = TaskSt::Done;
        self.stages[sidx].winners[task.index] = Some((worker, attempt));
        let stage = self.catalog.app.stage(task.stage);
        if stage.kind == StageKind::ShuffleMap {
            let bytes = stage.tasks[task.index].demand.shuffle_write.as_f64();
            self.stages[sidx].map_out_per_node[worker.index()] += bytes;
            self.stages[sidx].map_out_total += bytes;
        }
        self.kill_pending.remove(&task);
        self.observed_peak
            .insert((task.stage, task.index), entry.peak_mem);
        self.completed += 1;
        let record = TaskRecord {
            task,
            job: self.catalog.stage_jobs[sidx],
            template_key: stage.template_key,
            attempt,
            node: worker,
            speculative: false,
            locality: entry.locality,
            launched_at: entry.launched_at,
            finished_at: self.now,
            outcome: AttemptOutcome::Success,
            breakdown: entry.breakdown,
            peak_mem: entry.peak_mem,
            used_gpu: entry.use_gpu,
        };
        self.sched.on_task_finished(&record, self.now);

        for ready in self.tracker.task_finished(&self.catalog.app, task.stage) {
            self.release_stage(ready);
        }
        let job = self.catalog.stage_jobs[sidx];
        if self.jobs[job.index()].completed.is_none() && self.tracker.chain_done(job.index()) {
            self.jobs[job.index()].completed = Some(self.now);
            self.record(TraceEventKind::JobCompleted { job });
        }
        self.need_offers = true;
    }

    fn on_failed(&mut self, worker: NodeId, task: TaskRef, attempt: u32, reason: TaskFailure) {
        let Some(entry) = self.take_running(worker, task, attempt) else {
            return; // stale, same as completions
        };
        let outcome = match reason {
            TaskFailure::Oom => AttemptOutcome::OomFailure,
            TaskFailure::Preempted => AttemptOutcome::MemoryStragglerKilled,
        };
        if reason == TaskFailure::Oom {
            let node = &self.nodes[worker.index()];
            let pressure_pct = (node.mem_in_use.as_f64() + entry.peak_mem.as_f64())
                / node.executor_mem.as_f64().max(1.0)
                * 100.0;
            self.record(TraceEventKind::OomTaskKill {
                task,
                node: worker,
                pressure_pct: pressure_pct as u32,
            });
        }
        self.failed += 1;
        self.sched.on_task_failed(task, worker, outcome, self.now);
        let next = attempt + 1;
        if next >= self.cfg.sim.mem.max_retries {
            self.record(TraceEventKind::Aborted {
                cause: AbortCause::RetriesExhausted,
                task: Some(task),
            });
            self.aborted = true;
            return;
        }
        self.stages[task.stage.index()].tasks[task.index] = TaskSt::Pending {
            attempt_no: next,
            since: self.now,
        };
        self.need_offers = true;
    }

    // ---- failure detection & recovery -----------------------------------

    fn evaluate_detector(&mut self) {
        for tr in self.detector.evaluate(self.now) {
            match tr.to {
                NodeHealth::Suspect => self.record(TraceEventKind::NodeSuspect {
                    node: tr.node,
                    age: tr.age,
                }),
                NodeHealth::Dead => {
                    self.record(TraceEventKind::NodeDead {
                        node: tr.node,
                        age: tr.age,
                    });
                    self.node_lost(tr.node);
                }
                NodeHealth::Alive => self.record(TraceEventKind::NodeRecovered { node: tr.node }),
            }
        }
    }

    /// A node was declared dead: kill-and-requeue its running attempts
    /// and re-pend finished map tasks whose winning output lived there
    /// (the sim engine's lineage recompute, ported verbatim minus the
    /// executor-cache wipe serve mode doesn't model).
    fn node_lost(&mut self, node_id: NodeId) {
        let victims: Vec<RunningSt> = std::mem::take(&mut self.nodes[node_id.index()].running);
        for v in victims {
            self.kill_pending.entry(v.task).or_insert(self.now);
            self.failed += 1;
            self.sched
                .on_task_failed(v.task, node_id, AttemptOutcome::NodeFaulted, self.now);
            self.stages[v.task.stage.index()].tasks[v.task.index] = TaskSt::Pending {
                attempt_no: v.attempt + 1,
                since: self.now,
            };
        }
        self.nodes[node_id.index()].mem_in_use = ByteSize::ZERO;
        self.recompute_lost_outputs(node_id);
        self.need_offers = true;
    }

    fn recompute_lost_outputs(&mut self, node_id: NodeId) {
        for sidx in 0..self.stages.len() {
            if self.catalog.app.stages[sidx].kind != StageKind::ShuffleMap {
                continue;
            }
            let n_tasks = self.stages[sidx].tasks.len();
            let mut lost = 0usize;
            for tidx in 0..n_tasks {
                let Some((winner, attempt_no)) = self.stages[sidx].winners[tidx] else {
                    continue;
                };
                if winner != node_id {
                    continue;
                }
                if !self.tracker.task_lost(&self.catalog.app, StageId(sidx)) {
                    continue; // the chain no longer needs this output
                }
                let bytes = self.catalog.app.stages[sidx].tasks[tidx]
                    .demand
                    .shuffle_write
                    .as_f64();
                let srt = &mut self.stages[sidx];
                srt.map_out_per_node[node_id.index()] =
                    (srt.map_out_per_node[node_id.index()] - bytes).max(0.0);
                srt.map_out_total = (srt.map_out_total - bytes).max(0.0);
                srt.winners[tidx] = None;
                srt.tasks[tidx] = TaskSt::Pending {
                    attempt_no: attempt_no + 1,
                    since: self.now,
                };
                self.kill_pending
                    .entry(TaskRef {
                        stage: StageId(sidx),
                        index: tidx,
                    })
                    .or_insert(self.now);
                lost += 1;
            }
            if lost > 0 {
                self.record(TraceEventKind::LineageRecompute {
                    stage: StageId(sidx),
                    node: node_id,
                    tasks: lost,
                });
                self.need_offers = true;
            }
        }
    }

    // ---- stage release & offers -----------------------------------------

    fn release_ready(&mut self) {
        for s in self.tracker.take_ready(&self.catalog.app) {
            self.release_stage(s);
        }
    }

    fn release_stage(&mut self, stage: StageId) {
        let st = &mut self.stages[stage.index()];
        if st.released {
            return;
        }
        st.released = true;
        for t in st.tasks.iter_mut() {
            if let TaskSt::Pending { since, .. } = t {
                *since = self.now;
            }
        }
        self.sched
            .on_stage_ready(self.catalog.app.stage(stage), self.now);
    }

    /// `(process_nodes, node_local)` placement preferences — the sim
    /// engine's `preferred_nodes` without the executor-cache tier (serve
    /// workers hold no partition cache).
    fn preferred_nodes(&self, stage: StageId, tidx: usize) -> (Vec<NodeId>, Vec<NodeId>) {
        let template = &self.catalog.app.stage(stage).tasks[tidx];
        match &template.input {
            InputSource::Hdfs(block) => (
                Vec::new(),
                self.catalog.layout.block(*block).replicas.clone(),
            ),
            InputSource::CachedOrHdfs { fallback, .. } => (
                Vec::new(),
                self.catalog.layout.block(*fallback).replicas.clone(),
            ),
            InputSource::Shuffle => {
                let parents = &self.catalog.app.stage(stage).parents;
                let mut per_node = vec![0.0f64; self.nodes.len()];
                let mut total = 0.0f64;
                for p in parents {
                    let prt = &self.stages[p.index()];
                    for (i, b) in prt.map_out_per_node.iter().enumerate() {
                        per_node[i] += b;
                    }
                    total += prt.map_out_total;
                }
                let node_local = if total > 0.0 {
                    per_node
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b / total >= REDUCER_PREF_FRACTION)
                        .map(|(i, _)| NodeId(i))
                        .collect()
                } else {
                    Vec::new()
                };
                (Vec::new(), node_local)
            }
            InputSource::Generated => (Vec::new(), Vec::new()),
        }
    }

    fn offer_round(&mut self) {
        self.round += 1;
        let now = self.now;
        let mut blocked_count = 0usize;
        let mut running_total = 0usize;
        let node_views: Vec<NodeView> = self
            .cluster
            .iter()
            .map(|(id, spec)| {
                let st = &self.nodes[id.index()];
                let health = self.detector.health(id);
                let dead = health == NodeHealth::Dead;
                let blocked = !st.registered || dead;
                if blocked {
                    blocked_count += 1;
                }
                running_total += st.running.len();
                let running: Vec<RunningTaskView> = st
                    .running
                    .iter()
                    .map(|r| RunningTaskView {
                        task: r.task,
                        speculative: false,
                        elapsed: now.since(r.launched_at),
                        peak_mem: r.peak_mem,
                        on_gpu: r.use_gpu,
                    })
                    .collect();
                let gpus_busy = st.running.iter().filter(|r| r.use_gpu).count() as u32;
                NodeView {
                    node: id,
                    executor_mem: st.executor_mem,
                    mem_in_use: st.mem_in_use,
                    free_mem: st.executor_mem.saturating_sub(st.mem_in_use),
                    cpu_util: (st.running.len() as f64 / spec.cores as f64).min(1.0),
                    net_util: 0.0,
                    disk_util: 0.0,
                    gpus_idle: spec.gpus.saturating_sub(gpus_busy),
                    running,
                    blocked,
                    heartbeat_age: self.detector.age(id, now),
                    dead,
                    suspect: health == NodeHealth::Suspect,
                }
            })
            .collect();

        let mut pending = Vec::new();
        for sidx in 0..self.stages.len() {
            if !self.stages[sidx].released {
                continue;
            }
            for tidx in 0..self.stages[sidx].tasks.len() {
                let TaskSt::Pending { attempt_no, .. } = self.stages[sidx].tasks[tidx] else {
                    continue;
                };
                let stage = self.catalog.app.stage(StageId(sidx));
                let (process_nodes, node_local) = self.preferred_nodes(StageId(sidx), tidx);
                pending.push(PendingTaskView {
                    task: TaskRef {
                        stage: StageId(sidx),
                        index: tidx,
                    },
                    job: self.catalog.stage_jobs[sidx],
                    template_key: stage.template_key,
                    stage_kind: stage.kind,
                    attempt_no,
                    peak_mem_hint: self
                        .observed_peak
                        .get(&(StageId(sidx), tidx))
                        .copied()
                        .unwrap_or(ByteSize::ZERO),
                    gpu_capable: stage.tasks[tidx].demand.is_gpu_capable(),
                    process_nodes,
                    node_local,
                });
            }
        }
        self.max_pending = self.max_pending.max(pending.len());

        let job_arrivals: Vec<SimTime> = self
            .jobs
            .iter()
            .map(|j| j.submitted.unwrap_or(SimTime(u64::MAX)))
            .collect();
        let input = OfferInput {
            now,
            cluster: self.cluster,
            app: &self.catalog.app,
            nodes: node_views,
            pending,
            speculatable: Vec::new(),
            job_arrivals,
            changed: None,
        };
        let commands = self.sched.offer_round(&input);
        self.record(TraceEventKind::OfferRound {
            pending: input.pending.len(),
            running: running_total,
            blocked: blocked_count,
            commands: commands.len(),
        });
        for cmd in commands {
            self.apply_command(cmd);
        }
    }

    fn apply_command(&mut self, cmd: Command) {
        match cmd {
            Command::Launch {
                task,
                node,
                use_gpu,
                speculative,
                reason,
            } => {
                if speculative {
                    return; // serve mode offers no speculatable set
                }
                let TaskSt::Pending { attempt_no, since } =
                    self.stages[task.stage.index()].tasks[task.index]
                else {
                    return; // stale command: already launched or done
                };
                let health = self.detector.health(node);
                if !self.nodes[node.index()].registered || health == NodeHealth::Dead {
                    return; // launch to a dead node is a lost RPC
                }
                let stage = self.catalog.app.stage(task.stage);
                let demand = &stage.tasks[task.index].demand;
                let spec = self.cluster.node(node);
                let gpu = use_gpu && spec.gpus > 0 && demand.is_gpu_capable();
                let (dur, breakdown) = estimate(demand, spec, gpu);
                let (process_nodes, node_local) = self.preferred_nodes(task.stage, task.index);
                let locality = if process_nodes.contains(&node) {
                    Locality::ProcessLocal
                } else if node_local.contains(&node) {
                    Locality::NodeLocal
                } else if node_local.iter().any(|&n| self.cluster.same_rack(n, node)) {
                    Locality::RackLocal
                } else {
                    Locality::Any
                };
                let nst = &mut self.nodes[node.index()];
                nst.mem_in_use += demand.peak_mem;
                nst.running.push(RunningSt {
                    task,
                    attempt: attempt_no,
                    launched_at: self.now,
                    peak_mem: demand.peak_mem,
                    use_gpu: gpu,
                    locality,
                    breakdown,
                });
                self.stages[task.stage.index()].tasks[task.index] = TaskSt::Running {
                    node,
                    attempt: attempt_no,
                };
                self.dispatch_us.push(self.now.since(since).0);
                self.launched += 1;
                self.record(TraceEventKind::Launch {
                    task,
                    job: self.catalog.stage_jobs[task.stage.index()],
                    node,
                    attempt: attempt_no,
                    speculative: false,
                    use_gpu: gpu,
                    locality,
                    reason,
                });
                let hold = Duration::from_secs_f64(dur.as_secs_f64() * self.cfg.time_scale);
                self.outbox.send(
                    node,
                    WorkerCommand::Launch {
                        task,
                        attempt: attempt_no,
                        use_gpu: gpu,
                        hold,
                    },
                );
            }
            Command::KillAndRequeue { task, node } => {
                let TaskSt::Running { node: on, .. } =
                    self.stages[task.stage.index()].tasks[task.index]
                else {
                    return; // stale view: not running anymore
                };
                if on != node {
                    return; // stale view: moved since the offer
                }
                self.record(TraceEventKind::KillRequeue { task, node });
                // the attempt stays "running" until the worker confirms
                // with Failed { Preempted } — the confirmation is an
                // external event, so replay sees the same ordering
                self.outbox.send(node, WorkerCommand::Preempt { task });
            }
        }
    }

    // ---- reporting -------------------------------------------------------

    pub(crate) fn report(&self) -> ServeReport {
        let lat: Vec<f64> = self.dispatch_us.iter().map(|&us| us as f64).collect();
        let jobs_submitted = self.jobs.iter().filter(|j| j.submitted.is_some()).count();
        let jobs_completed = self.jobs.iter().filter(|j| j.completed.is_some()).count();
        let lost_tasks = self
            .kill_pending
            .keys()
            .filter(|t| !matches!(self.stages[t.stage.index()].tasks[t.index], TaskSt::Done))
            .count();
        ServeReport {
            digest: self.trace.digest(),
            events_recorded: self.trace.recorded(),
            jobs_submitted,
            jobs_completed,
            launched: self.launched,
            completed: self.completed,
            failed: self.failed,
            lost_tasks,
            max_pending: self.max_pending,
            dispatch_p50_us: if lat.is_empty() {
                0
            } else {
                quantile(&lat, 0.50) as u64
            },
            dispatch_p99_us: if lat.is_empty() {
                0
            } else {
                quantile(&lat, 0.99) as u64
            },
            makespan: SimDuration(self.now.0),
            clean: !self.aborted && jobs_submitted == jobs_completed,
        }
    }
}
