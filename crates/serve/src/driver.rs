//! The serve driver: the engine's offer loop re-hosted on a live
//! [`EventSource`].
//!
//! The driver owns the authoritative scheduling state (pending/running
//! tasks, stage lineage, per-node memory, failure detector) exactly like
//! the sim engine's `ClusterState`, but *time and execution* live
//! elsewhere: task execution happens in worker agents, and "what fires
//! next" comes from the event source — a [`WallClockSource`] in live
//! mode, a [`Calendar`] in replay mode. Because every state transition
//! is driven by a popped `(SimTime, ServeEvent)` and nothing else, the
//! trace digest of a live run is a pure function of its input log: the
//! replay harness re-runs this same driver over the logged events and
//! must produce a byte-identical digest.
//!
//! [`WallClockSource`]: rupam_simcore::source::WallClockSource
//! [`Calendar`]: rupam_simcore::Calendar

use std::collections::{HashMap, HashSet};
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rupam_cluster::{ClusterSpec, NodeId, NodeTier};
use rupam_dag::app::{JobId, StageId, StageKind};
use rupam_dag::lineage::StageTracker;
use rupam_dag::task::InputSource;
use rupam_dag::{Locality, MergedStream, TaskRef};
use rupam_elastic::{DemandView, PoolView, SpotPriceProcess};
use rupam_exec::config::SimConfig;
use rupam_exec::scheduler::{
    Command, NodeShadowTable, NodeView, OfferInput, PendingTaskView, RunningTaskView, Scheduler,
};
use rupam_exec::EngineError;
use rupam_faults::{FailureDetector, NodeHealth};
use rupam_metrics::breakdown::{BreakdownCategory, TaskBreakdown};
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::trace::{AbortCause, TraceBuffer, TraceEvent, TraceEventKind};
use rupam_simcore::source::EventSource;
use rupam_simcore::stats::quantile;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use crate::estimate::estimate;
use crate::proto::{ClientRequest, ServeEvent, TaskFailure, WorkerCommand, WorkerReport};

/// Reducer preference threshold: a node holding at least this fraction
/// of a reduce stage's map output is `NODE_LOCAL` (same rule as the sim
/// engine).
const REDUCER_PREF_FRACTION: f64 = 0.20;

/// Tunables of the live service.
#[derive(Clone)]
pub struct ServeConfig {
    /// Server tick period (detector evaluation + offer round cadence) —
    /// the live analogue of `EngineConfig::heartbeat`.
    pub tick: Duration,
    /// Worker heartbeat period.
    pub worker_heartbeat: Duration,
    /// Wall seconds per simulated second of estimated task duration
    /// (`0.001` = tasks run 1000× faster than their sim estimate).
    /// Fault-script times are scaled by the same factor.
    pub time_scale: f64,
    /// Bound of the server's input channel; producers block when the
    /// driver falls behind (backpressure).
    pub channel_capacity: usize,
    /// Abort the run if the wall clock passes this point (livelock
    /// safety net; checked on ticks, deterministic under replay because
    /// tick stamps are part of the event order).
    pub max_wall: Option<Duration>,
    /// Coalescing guard for event-driven offer rounds: when dispatchable
    /// state changes, the next round is scheduled no sooner than this
    /// long after the previous one, so a burst of completions (or a
    /// heartbeat storm) is absorbed by one round instead of thrashing.
    pub offer_min_interval: Duration,
    /// Debug oracle: rebuild the full `OfferInput` from scratch every
    /// round (the pre-incremental construction path) instead of
    /// maintaining the persistent node views and pending list. Decisions
    /// must be byte-identical either way — the serve equivalence tests
    /// replay the same input log down both paths and compare digests.
    pub debug_full_rebuild: bool,
    /// Sim tunables reused by the live mode: memory sizing/clamps
    /// (`mem`), retry budget, the failure-detector thresholds
    /// (`faults.suspect_after` / `faults.dead_after`, interpreted as
    /// *wall* durations here), and the elastic spot tier
    /// (`elastic` — pool membership, prices and the scaling policy;
    /// elastic durations are authored in sim seconds and scaled by
    /// `time_scale` like fault-script times).
    pub sim: SimConfig,
    /// Seed of the serve-side spot-price / preemption RNG. Elastic
    /// stepping happens on driver ticks — internal timer events never
    /// logged — so live and replay runs draw the identical sequence.
    pub elastic_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tick: Duration::from_millis(20),
            worker_heartbeat: Duration::from_millis(20),
            time_scale: 0.001,
            channel_capacity: 4096,
            max_wall: Some(Duration::from_secs(120)),
            offer_min_interval: Duration::from_millis(2),
            debug_full_rebuild: false,
            sim: SimConfig::default(),
            elastic_seed: 0x0E1A_571C,
        }
    }
}

/// Where launch/preempt/shutdown commands go: real worker inboxes in
/// live mode, nowhere in replay (the logged reports already tell the
/// replay driver everything the workers did).
pub(crate) enum Outbox {
    /// One unbounded command channel per worker, indexed by node id.
    Live(Vec<Sender<WorkerCommand>>),
    /// Replay: commands are decisions already reflected in the log.
    Replay,
}

impl Outbox {
    fn send(&self, worker: NodeId, cmd: WorkerCommand) {
        if let Outbox::Live(txs) = self {
            // a worker that already exited just misses the command — the
            // same as a lost RPC to a dead node
            let _ = txs[worker.index()].send(cmd);
        }
    }
}

struct RunningSt {
    task: TaskRef,
    attempt: u32,
    launched_at: SimTime,
    peak_mem: ByteSize,
    use_gpu: bool,
    locality: Locality,
    breakdown: TaskBreakdown,
}

enum TaskSt {
    Pending { attempt_no: u32, since: SimTime },
    Running { node: NodeId, attempt: u32 },
    Done,
}

struct StageSt {
    released: bool,
    tasks: Vec<TaskSt>,
    map_out_per_node: Vec<f64>,
    map_out_total: f64,
    winners: Vec<Option<(NodeId, u32)>>,
}

struct NodeSt {
    registered: bool,
    executor_mem: ByteSize,
    mem_in_use: ByteSize,
    running: Vec<RunningSt>,
    /// NIC occupancy from the worker's last heartbeat payload.
    net_util: f64,
    /// Disk occupancy from the worker's last heartbeat payload.
    disk_util: f64,
}

struct JobSt {
    submitted: Option<SimTime>,
    completed: Option<SimTime>,
}

/// Serve-side capacity controller: the sim engine's elastic check
/// re-hosted on driver ticks. All mutations happen while handling a
/// popped event with a dedicated seeded RNG, so a replay of the input
/// log reproduces the identical churn and the digest oracle still
/// holds.
struct ServeElastic {
    rng: StdRng,
    /// Per-pool price walks, in pool order.
    prices: Vec<SpotPriceProcess>,
    /// Per-pool current per-check preemption probability.
    risk: Vec<f64>,
    /// Per-node pool membership (`None` = on-demand tier).
    pool_of: Vec<Option<usize>>,
    /// Whether each node is currently part of the fleet. Spot nodes
    /// start deprovisioned; their agents register but stay blocked.
    provisioned: Vec<bool>,
    /// Preemption drain deadline, when a notice is outstanding.
    drain_deadline: Vec<Option<SimTime>>,
    /// Last instant each node had a running attempt (idle grace).
    last_busy: Vec<SimTime>,
    /// Next controller check is due at this stamp.
    next_check: SimTime,
    /// Task slots per node assumed for backlog→nodes conversion.
    slots_per_node: usize,
}

impl ServeElastic {
    fn new(cfg: &ServeConfig, cluster: &ClusterSpec) -> Self {
        let ecfg = &cfg.sim.elastic;
        let n = cluster.len();
        let prices: Vec<SpotPriceProcess> = ecfg.pools.iter().map(|p| p.price_process()).collect();
        let risk = ecfg
            .pools
            .iter()
            .zip(&prices)
            .map(|(pool, p)| pool.preempt_prob(p))
            .collect();
        let slots_per_node =
            (cluster.iter().map(|(_, s)| s.cores as usize).sum::<usize>() / n.max(1)).max(1);
        ServeElastic {
            rng: StdRng::seed_from_u64(cfg.elastic_seed),
            prices,
            risk,
            pool_of: (0..n).map(|i| ecfg.pool_of(NodeId(i))).collect(),
            provisioned: (0..n)
                .map(|i| ecfg.tier(NodeId(i)) == NodeTier::OnDemand)
                .collect(),
            drain_deadline: vec![None; n],
            last_busy: vec![SimTime::ZERO; n],
            next_check: SimTime::ZERO + wall_secs(ecfg.check_secs, cfg.time_scale),
            slots_per_node,
        }
    }
}

/// Sim seconds → wall duration under the serve time scale, floored at
/// one microsecond so intervals never collapse to zero.
fn wall_secs(secs: f64, time_scale: f64) -> SimDuration {
    SimDuration(((secs * time_scale * 1e6) as u64).max(1))
}

/// Aggregate outcome of one serve run (live or replay).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Decision-trace digest — the replay-equivalence oracle value.
    pub digest: u64,
    /// Total trace events recorded into the digest.
    pub events_recorded: u64,
    /// Jobs the client submitted.
    pub jobs_submitted: usize,
    /// Submitted jobs that ran to completion.
    pub jobs_completed: usize,
    /// Launch commands applied.
    pub launched: u64,
    /// Attempts completed successfully.
    pub completed: u64,
    /// Attempts that failed (fault kills, OOMs, preemptions).
    pub failed: u64,
    /// Tasks killed by recovery whose re-execution never completed —
    /// must be zero on a clean drain.
    pub lost_tasks: usize,
    /// Highest number of concurrently pending tasks seen at an offer
    /// round.
    pub max_pending: usize,
    /// Median dispatch latency (stage release / re-queue → launch), µs.
    pub dispatch_p50_us: u64,
    /// p99 dispatch latency, µs.
    pub dispatch_p99_us: u64,
    /// Offer rounds run.
    pub offer_rounds: u64,
    /// Median driver-side offer-round wall time (snapshot + scheduler +
    /// command application), µs. Meaningful in live mode only.
    pub offer_p50_us: u64,
    /// p95 offer-round wall time, µs.
    pub offer_p95_us: u64,
    /// Launch commands dropped because the task was no longer pending
    /// when the command was applied (the decision raced a completion or
    /// recovery re-queue).
    pub stale_launch_drops: u64,
    /// Launch commands dropped because the target node was unregistered
    /// or declared dead — the live analogue of a lost RPC.
    pub dead_launch_drops: u64,
    /// Launch commands dropped because the autoscaler had deprovisioned
    /// the target node by the time the command was applied.
    pub autoscale_launch_drops: u64,
    /// Launch commands dropped because the target node was draining
    /// under an outstanding preemption notice.
    pub preempt_launch_drops: u64,
    /// Spot nodes reclaimed after their drain notice expired.
    pub preemptions: u64,
    /// Autoscaler scale-up transitions applied.
    pub provisions: u64,
    /// Autoscaler scale-down transitions applied.
    pub decommissions: u64,
    /// Timestamp of the last handled event (wall µs since server start
    /// in live mode).
    pub makespan: SimDuration,
    /// True iff the run drained without aborting and every submitted
    /// job completed.
    pub clean: bool,
}

/// The serve-mode scheduling loop over any [`EventSource`].
pub(crate) struct ServeDriver<'a, S: EventSource<ServeEvent>> {
    catalog: &'a MergedStream,
    cluster: &'a ClusterSpec,
    cfg: &'a ServeConfig,
    sched: &'a mut (dyn Scheduler + Send),
    pub(crate) source: S,
    outbox: Outbox,
    now: SimTime,
    nodes: Vec<NodeSt>,
    stages: Vec<StageSt>,
    jobs: Vec<JobSt>,
    tracker: StageTracker,
    detector: FailureDetector,
    trace: TraceBuffer,
    round: u64,
    draining: bool,
    aborted: bool,
    kill_pending: HashMap<TaskRef, SimTime>,
    observed_peak: HashMap<(StageId, usize), ByteSize>,
    dispatch_us: Vec<u64>,
    max_pending: usize,
    launched: u64,
    completed: u64,
    failed: u64,
    // ---- persistent offer state (rebuilt per round before this PR) ----
    /// Long-lived node views: event application marks a node dirty and
    /// only dirty (or running) nodes are re-snapshotted per round.
    node_views: Vec<NodeView>,
    dirty_nodes: Vec<bool>,
    /// Shared engine diff rule producing `OfferInput::changed`.
    shadow: NodeShadowTable,
    /// Long-lived pending list, sorted by `(stage, index)` (the
    /// incremental dispatcher binary-searches it). Mutations queue in
    /// `pending_gone`/`pending_new` and are flushed before each round.
    pending_views: Vec<PendingTaskView>,
    pending_gone: HashSet<TaskRef>,
    pending_new: Vec<PendingTaskView>,
    /// Stages whose pending views carry stale shuffle preferences (an
    /// upstream map output moved since they were built).
    prefs_stale: HashSet<StageId>,
    /// Tasks that (re)entered pending or changed their view since the
    /// last round — the `OfferInput::pending_fresh` warranty. Fed from
    /// `pending_new` merges, preference refreshes and dead-node launch
    /// drops (the scheduler dequeued those, but the task stays pending
    /// here and must be re-ingested).
    fresh: HashSet<TaskRef>,
    /// Memoised per-stage shuffle preference list (`node_local` of every
    /// task in the stage); invalidated when a parent's map output moves.
    shuffle_pref: Vec<Option<Vec<NodeId>>>,
    /// Stage → consumer stages, for preference invalidation.
    children: Vec<Vec<StageId>>,
    // ---- event-driven offer scheduling ----
    /// Stamp of the already-scheduled [`ServeEvent::Offer`], if any.
    offer_due: Option<SimTime>,
    last_offer_at: Option<SimTime>,
    // ---- elastic spot tier (absent without spot pools) ----
    elastic: Option<ServeElastic>,
    // ---- instrumentation ----
    offer_us: Vec<u64>,
    stale_drops: u64,
    dead_drops: u64,
    autoscale_drops: u64,
    preempt_drops: u64,
    preemptions: u64,
    provisions: u64,
    decommissions: u64,
}

impl<'a, S: EventSource<ServeEvent>> ServeDriver<'a, S> {
    pub(crate) fn new(
        cluster: &'a ClusterSpec,
        catalog: &'a MergedStream,
        cfg: &'a ServeConfig,
        sched: &'a mut (dyn Scheduler + Send),
        source: S,
        outbox: Outbox,
    ) -> Self {
        sched.on_app_start(&catalog.app, cluster);
        let nodes = cluster
            .iter()
            .map(|(id, spec)| {
                let requested = sched.executor_memory(cluster, id);
                let ceiling = spec.mem.saturating_sub(cfg.sim.mem.os_reserved);
                NodeSt {
                    registered: false,
                    executor_mem: requested.min(ceiling),
                    mem_in_use: ByteSize::ZERO,
                    running: Vec::new(),
                    net_util: 0.0,
                    disk_util: 0.0,
                }
            })
            .collect();
        let stages = catalog
            .app
            .stages
            .iter()
            .map(|s| StageSt {
                released: false,
                tasks: (0..s.tasks.len())
                    .map(|_| TaskSt::Pending {
                        attempt_no: 0,
                        since: SimTime::ZERO,
                    })
                    .collect(),
                map_out_per_node: vec![0.0; cluster.len()],
                map_out_total: 0.0,
                winners: vec![None; s.tasks.len()],
            })
            .collect();
        let chains: Vec<std::ops::Range<usize>> =
            catalog.jobs.iter().map(|j| j.app_jobs.clone()).collect();
        let mut children: Vec<Vec<StageId>> = vec![Vec::new(); catalog.app.stages.len()];
        for (sidx, stage) in catalog.app.stages.iter().enumerate() {
            for p in &stage.parents {
                children[p.index()].push(StageId(sidx));
            }
        }
        let n_nodes = cluster.len();
        let n_stages = catalog.app.stages.len();
        ServeDriver {
            cluster,
            catalog,
            cfg,
            sched,
            source,
            outbox,
            now: SimTime::ZERO,
            nodes,
            stages,
            jobs: catalog
                .jobs
                .iter()
                .map(|_| JobSt {
                    submitted: None,
                    completed: None,
                })
                .collect(),
            tracker: StageTracker::new_stream(&catalog.app, &chains),
            detector: FailureDetector::new(cluster.len(), &cfg.sim.faults, SimTime::ZERO),
            trace: TraceBuffer::new(rupam_metrics::trace::DEFAULT_TRACE_CAPACITY),
            round: 0,
            draining: false,
            aborted: false,
            kill_pending: HashMap::new(),
            observed_peak: HashMap::new(),
            dispatch_us: Vec::new(),
            max_pending: 0,
            launched: 0,
            completed: 0,
            failed: 0,
            node_views: Vec::new(),
            dirty_nodes: vec![true; n_nodes],
            shadow: NodeShadowTable::new(),
            pending_views: Vec::new(),
            pending_gone: HashSet::new(),
            pending_new: Vec::new(),
            prefs_stale: HashSet::new(),
            fresh: HashSet::new(),
            shuffle_pref: vec![None; n_stages],
            children,
            offer_due: None,
            last_offer_at: None,
            elastic: (!cfg.sim.elastic.is_empty()).then(|| ServeElastic::new(cfg, cluster)),
            offer_us: Vec::new(),
            stale_drops: 0,
            dead_drops: 0,
            autoscale_drops: 0,
            preempt_drops: 0,
            preemptions: 0,
            provisions: 0,
            decommissions: 0,
        }
    }

    fn record(&mut self, kind: TraceEventKind) {
        self.trace.record(TraceEvent {
            at: self.now,
            round: self.round,
            kind,
        });
    }

    fn finished(&self) -> bool {
        if self.aborted {
            return true;
        }
        let submitted_done = self
            .jobs
            .iter()
            .all(|j| j.submitted.is_none() || j.completed.is_some());
        let all_submitted = self.jobs.iter().all(|j| j.submitted.is_some());
        submitted_done
            && (self.draining || all_submitted)
            && (self.draining || !self.jobs.is_empty())
    }

    /// Run to drain (or abort). [`EngineError::SourceDisconnected`] means
    /// every producer hung up while submitted work was incomplete.
    pub(crate) fn run(&mut self) -> Result<(), EngineError> {
        let tick = SimDuration((self.cfg.tick.as_micros() as u64).max(1));
        self.source.schedule(self.now + tick, ServeEvent::Tick);
        while !self.finished() {
            let Some((t, ev)) = self.source.pop() else {
                self.aborted = true;
                self.record(TraceEventKind::Aborted {
                    cause: AbortCause::SourceDisconnected,
                    task: None,
                });
                self.shutdown_workers();
                return Err(EngineError::SourceDisconnected { at: self.now });
            };
            self.now = t;
            match ev {
                ServeEvent::Tick => {
                    self.sched.on_heartbeat(self.now);
                    self.evaluate_detector();
                    self.elastic_tick();
                    if let Some(max) = self.cfg.max_wall {
                        if self.now >= SimTime(max.as_micros() as u64) && !self.finished() {
                            self.aborted = true;
                            self.record(TraceEventKind::Aborted {
                                cause: AbortCause::Livelock,
                                task: None,
                            });
                            break;
                        }
                    }
                    self.source.schedule(self.now + tick, ServeEvent::Tick);
                }
                // offers are event-driven: any state change that could
                // make a task dispatchable schedules one coalesced round
                // (min-interval apart), so dispatch latency is bounded by
                // the coalescing window instead of the tick period, and
                // quiet stretches run no rounds at all
                ServeEvent::Offer => {
                    self.offer_due = None;
                    if !self.aborted {
                        self.last_offer_at = Some(self.now);
                        self.offer_round();
                    }
                }
                ServeEvent::Client(frame) => self.handle_client(frame.body),
                ServeEvent::Worker(msg) => self.handle_worker(msg.worker, msg.frame.body),
            }
        }
        self.shutdown_workers();
        Ok(())
    }

    fn shutdown_workers(&self) {
        for i in 0..self.nodes.len() {
            self.outbox.send(NodeId(i), WorkerCommand::Shutdown);
        }
    }

    // ---- external inputs ------------------------------------------------

    fn handle_client(&mut self, req: ClientRequest) {
        match req {
            ClientRequest::Submit { job } => self.submit_job(job),
            ClientRequest::Drain => self.draining = true,
        }
    }

    fn submit_job(&mut self, job: JobId) {
        let Some(j) = self.jobs.get_mut(job.index()) else {
            return; // unknown job id: ignore like a malformed RPC
        };
        if j.submitted.is_some() {
            return; // duplicate submission
        }
        j.submitted = Some(self.now);
        self.record(TraceEventKind::JobSubmitted {
            job,
            tenant: self.catalog.tenant_of(job),
        });
        let stages: Vec<StageId> = (0..self.stages.len())
            .map(StageId)
            .filter(|s| self.catalog.stage_jobs[s.index()] == job)
            .collect();
        self.sched.on_job_submitted(job, &stages, self.now);
        self.tracker.arrive(job.index());
        self.release_ready();
        self.request_offers();
    }

    fn handle_worker(&mut self, worker: NodeId, report: WorkerReport) {
        if worker.index() >= self.nodes.len() {
            return;
        }
        match report {
            WorkerReport::Register => {
                let fresh = !self.nodes[worker.index()].registered;
                self.nodes[worker.index()].registered = true;
                if fresh {
                    let mem = self.nodes[worker.index()].executor_mem;
                    self.record(TraceEventKind::ExecutorSized { node: worker, mem });
                }
                // a re-registering worker starts with an empty slot set
                let nst = &mut self.nodes[worker.index()];
                nst.net_util = 0.0;
                nst.disk_util = 0.0;
                self.dirty_nodes[worker.index()] = true;
                self.observe_liveness(worker);
                self.request_offers();
            }
            WorkerReport::Heartbeat {
                net_util,
                disk_util,
            } => {
                self.observe_liveness(worker);
                let nst = &mut self.nodes[worker.index()];
                if nst.net_util != net_util || nst.disk_util != disk_util {
                    nst.net_util = net_util;
                    nst.disk_util = disk_util;
                    // utilisation drift alone creates no dispatchable
                    // work — mark the view stale but let the next
                    // triggered round pick it up (no offer request, so
                    // heartbeat storms cannot thrash rounds)
                    self.dirty_nodes[worker.index()] = true;
                }
            }
            WorkerReport::Completed { task, attempt } => self.on_completed(worker, task, attempt),
            WorkerReport::Failed {
                task,
                attempt,
                reason,
            } => self.on_failed(worker, task, attempt, reason),
        }
    }

    /// Feed the failure detector; a beacon from a declared-dead node
    /// re-admits it (the sim engine's re-admission path).
    fn observe_liveness(&mut self, worker: NodeId) {
        if self.detector.is_dead(worker) {
            self.detector.revive(worker, self.now);
            self.record(TraceEventKind::NodeRecovered { node: worker });
            self.dirty_nodes[worker.index()] = true;
            self.request_offers();
        } else {
            self.detector.observe(worker, self.now);
        }
    }

    fn take_running(&mut self, worker: NodeId, task: TaskRef, attempt: u32) -> Option<RunningSt> {
        let node = &mut self.nodes[worker.index()];
        let pos = node
            .running
            .iter()
            .position(|r| r.task == task && r.attempt == attempt)?;
        let entry = node.running.remove(pos);
        debug_assert!(matches!(
            self.stages[task.stage.index()].tasks[task.index],
            TaskSt::Running { node: n, attempt: a } if n == worker && a == attempt
        ));
        node.mem_in_use = node.mem_in_use.saturating_sub(entry.peak_mem);
        self.dirty_nodes[worker.index()] = true;
        Some(entry)
    }

    fn on_completed(&mut self, worker: NodeId, task: TaskRef, attempt: u32) {
        // a report for an attempt the server no longer tracks (node was
        // declared dead and the task re-queued, or a preempt raced a
        // completion) is stale — drop it, the authoritative copy wins
        let Some(entry) = self.take_running(worker, task, attempt) else {
            return;
        };
        let sidx = task.stage.index();
        self.stages[sidx].tasks[task.index] = TaskSt::Done;
        self.stages[sidx].winners[task.index] = Some((worker, attempt));
        let stage = self.catalog.app.stage(task.stage);
        if stage.kind == StageKind::ShuffleMap {
            let bytes = stage.tasks[task.index].demand.shuffle_write.as_f64();
            self.stages[sidx].map_out_per_node[worker.index()] += bytes;
            self.stages[sidx].map_out_total += bytes;
            if bytes > 0.0 {
                self.invalidate_child_prefs(task.stage);
            }
        }
        self.kill_pending.remove(&task);
        self.observed_peak
            .insert((task.stage, task.index), entry.peak_mem);
        self.completed += 1;
        let record = TaskRecord {
            task,
            job: self.catalog.stage_jobs[sidx],
            template_key: stage.template_key,
            attempt,
            node: worker,
            speculative: false,
            locality: entry.locality,
            launched_at: entry.launched_at,
            finished_at: self.now,
            outcome: AttemptOutcome::Success,
            breakdown: entry.breakdown,
            peak_mem: entry.peak_mem,
            used_gpu: entry.use_gpu,
        };
        self.sched.on_task_finished(&record, self.now);

        for ready in self.tracker.task_finished(&self.catalog.app, task.stage) {
            self.release_stage(ready);
        }
        let job = self.catalog.stage_jobs[sidx];
        if self.jobs[job.index()].completed.is_none() && self.tracker.chain_done(job.index()) {
            self.jobs[job.index()].completed = Some(self.now);
            self.record(TraceEventKind::JobCompleted {
                job,
                tenant: self.catalog.tenant_of(job),
            });
        }
        self.request_offers();
    }

    fn on_failed(&mut self, worker: NodeId, task: TaskRef, attempt: u32, reason: TaskFailure) {
        let Some(entry) = self.take_running(worker, task, attempt) else {
            return; // stale, same as completions
        };
        let outcome = match reason {
            TaskFailure::Oom => AttemptOutcome::OomFailure,
            TaskFailure::Preempted => AttemptOutcome::MemoryStragglerKilled,
        };
        if reason == TaskFailure::Oom {
            let node = &self.nodes[worker.index()];
            let pressure_pct = (node.mem_in_use.as_f64() + entry.peak_mem.as_f64())
                / node.executor_mem.as_f64().max(1.0)
                * 100.0;
            self.record(TraceEventKind::OomTaskKill {
                task,
                node: worker,
                pressure_pct: pressure_pct as u32,
            });
        }
        self.failed += 1;
        self.sched.on_task_failed(task, worker, outcome, self.now);
        let next = attempt + 1;
        if next >= self.cfg.sim.mem.max_retries {
            self.record(TraceEventKind::Aborted {
                cause: AbortCause::RetriesExhausted,
                task: Some(task),
            });
            self.aborted = true;
            return;
        }
        self.stages[task.stage.index()].tasks[task.index] = TaskSt::Pending {
            attempt_no: next,
            since: self.now,
        };
        let view = self.build_pending_view(task, next);
        self.pending_new.push(view);
        self.request_offers();
    }

    // ---- failure detection & recovery -----------------------------------

    fn evaluate_detector(&mut self) {
        for tr in self.detector.evaluate(self.now) {
            // every health transition changes the node's view (suspect /
            // dead / blocked flags) and can change what is dispatchable
            self.dirty_nodes[tr.node.index()] = true;
            match tr.to {
                NodeHealth::Suspect => {
                    self.record(TraceEventKind::NodeSuspect {
                        node: tr.node,
                        age: tr.age,
                    });
                    self.request_offers();
                }
                NodeHealth::Dead => {
                    self.record(TraceEventKind::NodeDead {
                        node: tr.node,
                        age: tr.age,
                    });
                    self.node_lost(tr.node);
                }
                NodeHealth::Alive => {
                    self.record(TraceEventKind::NodeRecovered { node: tr.node });
                    self.request_offers();
                }
            }
        }
    }

    /// A node was declared dead: kill-and-requeue its running attempts
    /// and re-pend finished map tasks whose winning output lived there
    /// (the sim engine's lineage recompute, ported verbatim minus the
    /// executor-cache wipe serve mode doesn't model).
    fn node_lost(&mut self, node_id: NodeId) {
        let victims: Vec<RunningSt> = std::mem::take(&mut self.nodes[node_id.index()].running);
        for v in victims {
            self.kill_pending.entry(v.task).or_insert(self.now);
            self.failed += 1;
            self.sched
                .on_task_failed(v.task, node_id, AttemptOutcome::NodeFaulted, self.now);
            self.stages[v.task.stage.index()].tasks[v.task.index] = TaskSt::Pending {
                attempt_no: v.attempt + 1,
                since: self.now,
            };
            let view = self.build_pending_view(v.task, v.attempt + 1);
            self.pending_new.push(view);
        }
        let nst = &mut self.nodes[node_id.index()];
        nst.mem_in_use = ByteSize::ZERO;
        nst.net_util = 0.0;
        nst.disk_util = 0.0;
        self.dirty_nodes[node_id.index()] = true;
        self.recompute_lost_outputs(node_id);
        self.request_offers();
    }

    fn recompute_lost_outputs(&mut self, node_id: NodeId) {
        for sidx in 0..self.stages.len() {
            if self.catalog.app.stages[sidx].kind != StageKind::ShuffleMap {
                continue;
            }
            let n_tasks = self.stages[sidx].tasks.len();
            let mut lost = 0usize;
            for tidx in 0..n_tasks {
                let Some((winner, attempt_no)) = self.stages[sidx].winners[tidx] else {
                    continue;
                };
                if winner != node_id {
                    continue;
                }
                if !self.tracker.task_lost(&self.catalog.app, StageId(sidx)) {
                    continue; // the chain no longer needs this output
                }
                let bytes = self.catalog.app.stages[sidx].tasks[tidx]
                    .demand
                    .shuffle_write
                    .as_f64();
                let srt = &mut self.stages[sidx];
                srt.map_out_per_node[node_id.index()] =
                    (srt.map_out_per_node[node_id.index()] - bytes).max(0.0);
                srt.map_out_total = (srt.map_out_total - bytes).max(0.0);
                srt.winners[tidx] = None;
                srt.tasks[tidx] = TaskSt::Pending {
                    attempt_no: attempt_no + 1,
                    since: self.now,
                };
                let task = TaskRef {
                    stage: StageId(sidx),
                    index: tidx,
                };
                let view = self.build_pending_view(task, attempt_no + 1);
                self.pending_new.push(view);
                self.kill_pending.entry(task).or_insert(self.now);
                lost += 1;
            }
            if lost > 0 {
                self.record(TraceEventKind::LineageRecompute {
                    stage: StageId(sidx),
                    node: node_id,
                    tasks: lost,
                });
                self.invalidate_child_prefs(StageId(sidx));
                self.request_offers();
            }
        }
    }

    // ---- elastic spot tier ----------------------------------------------

    /// The serve-side capacity controller, run on every driver tick: fire
    /// due preemption drains, and — at the (scaled) check cadence — step
    /// spot prices, scale pools to their policy targets, and draw
    /// price-correlated preemptions. Pure function of the popped event
    /// order plus the dedicated seeded RNG, so replay reproduces the
    /// identical churn.
    fn elastic_tick(&mut self) {
        let Some(mut el) = self.elastic.take() else {
            return;
        };
        let cfg = self.cfg;
        let ecfg = &cfg.sim.elastic;

        // fire preemption drains whose notice window expired: reclaim
        // the node through the same loss path a dead declaration takes
        for i in 0..self.nodes.len() {
            let due = el.drain_deadline[i].is_some_and(|d| d <= self.now);
            if !due {
                continue;
            }
            el.drain_deadline[i] = None;
            el.provisioned[i] = false;
            self.preemptions += 1;
            let node = NodeId(i);
            // free the worker's slots; its failure reports arrive as
            // stale (the authoritative attempts are requeued below)
            let held: Vec<TaskRef> = self.nodes[i].running.iter().map(|r| r.task).collect();
            for task in held {
                self.outbox.send(node, WorkerCommand::Preempt { task });
            }
            self.node_lost(node);
        }

        if self.now >= el.next_check && !self.aborted {
            el.next_check = self.now + wall_secs(ecfg.check_secs, cfg.time_scale);
            // price dynamics advance in sim seconds — the OU path is the
            // same one the sim engine walks at this check cadence
            for i in 0..el.prices.len() {
                el.prices[i].step(ecfg.check_secs, &mut el.rng);
                el.risk[i] = ecfg.pools[i].preempt_prob(&el.prices[i]);
            }
            for i in 0..self.nodes.len() {
                if !self.nodes[i].running.is_empty() {
                    el.last_busy[i] = self.now;
                }
            }

            let backlog: usize = self
                .stages
                .iter()
                .filter(|s| s.released)
                .map(|s| {
                    s.tasks
                        .iter()
                        .filter(|t| matches!(t, TaskSt::Pending { .. }))
                        .count()
                })
                .sum();
            let active_nodes = (0..self.nodes.len())
                .filter(|&i| el.provisioned[i] && !self.detector.is_dead(NodeId(i)))
                .count();
            let demand = DemandView {
                backlog,
                active_nodes,
                slots_per_node: el.slots_per_node,
            };

            for (pi, pool) in ecfg.pools.iter().enumerate() {
                let members: Vec<NodeId> = pool
                    .nodes
                    .iter()
                    .copied()
                    .filter(|n| n.index() < self.nodes.len())
                    .collect();
                let active = members
                    .iter()
                    .filter(|n| el.provisioned[n.index()] && !self.detector.is_dead(**n))
                    .count();
                let view = PoolView {
                    price: el.prices[pi].price,
                    mean_price: pool.mean_price,
                    active,
                    capacity: members.len(),
                };
                let target = ecfg
                    .policy
                    .scaling()
                    .target(ecfg, &view, &demand)
                    .min(members.len());
                if target > active {
                    let mut to_add = target - active;
                    for &nid in &members {
                        if to_add == 0 {
                            break;
                        }
                        let i = nid.index();
                        if el.provisioned[i] || self.detector.is_dead(nid) {
                            continue;
                        }
                        // no extra provisioning latency in serve mode:
                        // worker registration is the real join path
                        el.provisioned[i] = true;
                        el.last_busy[i] = self.now;
                        self.provisions += 1;
                        self.record(TraceEventKind::NodeProvisioned { node: nid });
                        self.dirty_nodes[i] = true;
                        self.request_offers();
                        to_add -= 1;
                    }
                } else if target < active {
                    let mut to_drop = active - target;
                    for &nid in &members {
                        if to_drop == 0 {
                            break;
                        }
                        let i = nid.index();
                        let idle = self.now.since(el.last_busy[i]);
                        let eligible = el.provisioned[i]
                            && el.drain_deadline[i].is_none()
                            && self.nodes[i].running.is_empty()
                            && idle >= wall_secs(ecfg.scale_down_idle_secs, cfg.time_scale);
                        if !eligible {
                            continue;
                        }
                        el.provisioned[i] = false;
                        self.decommissions += 1;
                        self.record(TraceEventKind::NodeDecommissioned { node: nid });
                        // map outputs leave with the node: same loss
                        // path as a crash, lineage recompute included
                        self.node_lost(nid);
                        to_drop -= 1;
                    }
                }
            }

            // price-correlated preemptions: one draw per pool slot per
            // check, applied only to nodes actually in the fleet, so
            // the draw sequence never depends on scheduler behaviour
            for (pi, pool) in ecfg.pools.iter().enumerate() {
                let prob = el.risk[pi];
                for &nid in &pool.nodes {
                    let hit = el.rng.gen_range(0.0..1.0) < prob;
                    let i = nid.index();
                    if !hit || i >= self.nodes.len() {
                        continue;
                    }
                    if el.provisioned[i]
                        && el.drain_deadline[i].is_none()
                        && !self.detector.is_dead(nid)
                    {
                        let notice = wall_secs(pool.notice_secs, cfg.time_scale);
                        el.drain_deadline[i] = Some(self.now + notice);
                        self.record(TraceEventKind::PreemptionNotice { node: nid, notice });
                        self.dirty_nodes[i] = true;
                        self.request_offers();
                    }
                }
            }
        }
        self.elastic = Some(el);
    }

    // ---- stage release & offers -----------------------------------------

    fn release_ready(&mut self) {
        for s in self.tracker.take_ready(&self.catalog.app) {
            self.release_stage(s);
        }
    }

    fn release_stage(&mut self, stage: StageId) {
        let now = self.now;
        let st = &mut self.stages[stage.index()];
        if st.released {
            return;
        }
        st.released = true;
        let mut fresh: Vec<(usize, u32)> = Vec::new();
        for (tidx, t) in st.tasks.iter_mut().enumerate() {
            if let TaskSt::Pending { since, attempt_no } = t {
                *since = now;
                fresh.push((tidx, *attempt_no));
            }
        }
        for (tidx, attempt_no) in fresh {
            let view = self.build_pending_view(TaskRef { stage, index: tidx }, attempt_no);
            self.pending_new.push(view);
        }
        self.sched
            .on_stage_ready(self.catalog.app.stage(stage), self.now);
    }

    /// `(process_nodes, node_local)` placement preferences — the sim
    /// engine's `preferred_nodes` without the executor-cache tier (serve
    /// workers hold no partition cache). HDFS replica lists are static;
    /// shuffle preferences are memoised per stage (every task of a
    /// reduce stage shares them) and invalidated only when an upstream
    /// map output moves.
    fn preferred_nodes(&mut self, stage: StageId, tidx: usize) -> (Vec<NodeId>, Vec<NodeId>) {
        let template = &self.catalog.app.stage(stage).tasks[tidx];
        match &template.input {
            InputSource::Hdfs(block) => (
                Vec::new(),
                self.catalog.layout.block(*block).replicas.clone(),
            ),
            InputSource::CachedOrHdfs { fallback, .. } => (
                Vec::new(),
                self.catalog.layout.block(*fallback).replicas.clone(),
            ),
            InputSource::Shuffle => (Vec::new(), self.shuffle_pref_of(stage)),
            InputSource::Generated => (Vec::new(), Vec::new()),
        }
    }

    /// The memoised shuffle preference list of a reduce stage: nodes
    /// holding ≥ 20 % of the parents' map output.
    fn shuffle_pref_of(&mut self, stage: StageId) -> Vec<NodeId> {
        if let Some(nl) = &self.shuffle_pref[stage.index()] {
            return nl.clone();
        }
        let parents = &self.catalog.app.stage(stage).parents;
        let mut per_node = vec![0.0f64; self.nodes.len()];
        let mut total = 0.0f64;
        for p in parents {
            let prt = &self.stages[p.index()];
            for (i, b) in prt.map_out_per_node.iter().enumerate() {
                per_node[i] += b;
            }
            total += prt.map_out_total;
        }
        let node_local: Vec<NodeId> = if total > 0.0 {
            per_node
                .iter()
                .enumerate()
                .filter(|(_, &b)| b / total >= REDUCER_PREF_FRACTION)
                .map(|(i, _)| NodeId(i))
                .collect()
        } else {
            Vec::new()
        };
        self.shuffle_pref[stage.index()] = Some(node_local.clone());
        node_local
    }

    /// A map output of `parent` moved: drop every consumer stage's
    /// memoised shuffle preferences and queue their pending views for an
    /// in-place refresh at the next flush.
    fn invalidate_child_prefs(&mut self, parent: StageId) {
        for i in 0..self.children[parent.index()].len() {
            let child = self.children[parent.index()][i];
            self.shuffle_pref[child.index()] = None;
            self.prefs_stale.insert(child);
        }
    }

    fn build_pending_view(&mut self, task: TaskRef, attempt_no: u32) -> PendingTaskView {
        let (process_nodes, node_local) = self.preferred_nodes(task.stage, task.index);
        let stage = self.catalog.app.stage(task.stage);
        PendingTaskView {
            task,
            job: self.catalog.stage_jobs[task.stage.index()],
            template_key: stage.template_key,
            stage_kind: stage.kind,
            attempt_no,
            peak_mem_hint: self
                .observed_peak
                .get(&(task.stage, task.index))
                .copied()
                .unwrap_or(ByteSize::ZERO),
            gpu_capable: stage.tasks[task.index].demand.is_gpu_capable(),
            process_nodes,
            node_local,
        }
    }

    fn build_node_view(&self, id: NodeId) -> NodeView {
        let st = &self.nodes[id.index()];
        let spec = self.cluster.node(id);
        let health = self.detector.health(id);
        let dead = health == NodeHealth::Dead;
        let now = self.now;
        let running: Vec<RunningTaskView> = st
            .running
            .iter()
            .map(|r| RunningTaskView {
                task: r.task,
                speculative: false,
                elapsed: now.since(r.launched_at),
                peak_mem: r.peak_mem,
                on_gpu: r.use_gpu,
            })
            .collect();
        let gpus_busy = st.running.iter().filter(|r| r.use_gpu).count() as u32;
        let (tier, draining, preempt_risk, provisioned) = match &self.elastic {
            Some(el) => {
                let i = id.index();
                let tier = match el.pool_of[i] {
                    Some(_) => NodeTier::Spot,
                    None => NodeTier::OnDemand,
                };
                let risk = if el.provisioned[i] {
                    el.pool_of[i].map_or(0.0, |pi| el.risk[pi])
                } else {
                    0.0
                };
                (
                    tier,
                    el.drain_deadline[i].is_some(),
                    risk,
                    el.provisioned[i],
                )
            }
            None => (NodeTier::OnDemand, false, 0.0, true),
        };
        NodeView {
            node: id,
            executor_mem: st.executor_mem,
            mem_in_use: st.mem_in_use,
            free_mem: st.executor_mem.saturating_sub(st.mem_in_use),
            cpu_util: (st.running.len() as f64 / spec.cores as f64).min(1.0),
            net_util: st.net_util,
            disk_util: st.disk_util,
            gpus_idle: spec.gpus.saturating_sub(gpus_busy),
            running,
            blocked: !st.registered || dead || !provisioned || draining,
            heartbeat_age: self.detector.age(id, now),
            dead,
            suspect: health == NodeHealth::Suspect,
            tier,
            draining,
            preempt_risk,
        }
    }

    /// Schedule a coalesced offer round: immediately if the coalescing
    /// window since the last round has passed, else at the window's end.
    /// A no-op while one is already scheduled. The `Offer` event is an
    /// internal timer — never logged — so replay re-derives the exact
    /// same schedule from the logged externals (the trigger sites are
    /// pure functions of popped events).
    fn request_offers(&mut self) {
        if self.offer_due.is_some() || self.aborted {
            return;
        }
        let min = SimDuration((self.cfg.offer_min_interval.as_micros() as u64).max(1));
        let due = match self.last_offer_at {
            Some(last) => std::cmp::max(last + min, self.now),
            None => self.now,
        };
        self.offer_due = Some(due);
        self.source.schedule(due, ServeEvent::Offer);
    }

    /// Apply the queued pending-list mutations: launches drop out,
    /// re-pended and newly-released tasks merge in (keeping `(stage,
    /// index)` order), and views whose shuffle preferences went stale
    /// are refreshed in place.
    fn flush_pending(&mut self) {
        if !self.pending_gone.is_empty() {
            let gone = std::mem::take(&mut self.pending_gone);
            self.pending_views.retain(|p| !gone.contains(&p.task));
        }
        if !self.pending_new.is_empty() {
            let mut arrived = std::mem::take(&mut self.pending_new);
            self.fresh.extend(arrived.iter().map(|p| p.task));
            self.pending_views.append(&mut arrived);
            self.pending_views
                .sort_unstable_by_key(|p| (p.task.stage, p.task.index));
        }
        if !self.prefs_stale.is_empty() {
            let mut stale: Vec<StageId> = self.prefs_stale.drain().collect();
            stale.sort_unstable();
            for s in stale {
                let lo = self.pending_views.partition_point(|p| p.task.stage < s);
                let hi = self.pending_views.partition_point(|p| p.task.stage <= s);
                for i in lo..hi {
                    let task = self.pending_views[i].task;
                    let (pn, nl) = self.preferred_nodes(task.stage, task.index);
                    self.pending_views[i].process_nodes = pn;
                    self.pending_views[i].node_local = nl;
                    self.fresh.insert(task);
                }
            }
        }
    }

    /// Re-snapshot the views event application marked dirty, plus every
    /// node with running attempts (their `elapsed` advances with time —
    /// and the changed-delta contract promises running nodes are always
    /// in the delta). Untouched views only get their heartbeat age
    /// refreshed, which no ranking reads and the shadow ignores.
    fn refresh_node_views(&mut self) {
        if self.node_views.len() != self.nodes.len() {
            self.node_views = (0..self.nodes.len())
                .map(|i| self.build_node_view(NodeId(i)))
                .collect();
            self.dirty_nodes = vec![false; self.nodes.len()];
            return;
        }
        for i in 0..self.nodes.len() {
            if self.dirty_nodes[i] || !self.nodes[i].running.is_empty() {
                self.node_views[i] = self.build_node_view(NodeId(i));
                self.dirty_nodes[i] = false;
            } else {
                self.node_views[i].heartbeat_age = self.detector.age(NodeId(i), self.now);
            }
        }
    }

    /// Debug oracle: rebuild views and pending list from scratch, the
    /// way every round did before the persistent offer state existed.
    fn rebuild_offer_state(&mut self) {
        self.pending_gone.clear();
        self.pending_new.clear();
        self.prefs_stale.clear();
        self.fresh.clear();
        self.dirty_nodes.iter_mut().for_each(|d| *d = false);
        self.node_views = (0..self.nodes.len())
            .map(|i| self.build_node_view(NodeId(i)))
            .collect();
        let mut todo: Vec<(TaskRef, u32)> = Vec::new();
        for sidx in 0..self.stages.len() {
            if !self.stages[sidx].released {
                continue;
            }
            for tidx in 0..self.stages[sidx].tasks.len() {
                if let TaskSt::Pending { attempt_no, .. } = self.stages[sidx].tasks[tidx] {
                    todo.push((
                        TaskRef {
                            stage: StageId(sidx),
                            index: tidx,
                        },
                        attempt_no,
                    ));
                }
            }
        }
        self.pending_views = todo
            .into_iter()
            .map(|(task, attempt_no)| self.build_pending_view(task, attempt_no))
            .collect();
    }

    fn offer_round(&mut self) {
        let started = Instant::now();
        self.round += 1;
        if self.cfg.debug_full_rebuild {
            self.rebuild_offer_state();
        } else {
            self.flush_pending();
            self.refresh_node_views();
        }
        // the full-rebuild oracle forfeits the warranty (None → the
        // scheduler re-scans everything); the incremental path passes
        // the accumulated delta, sorted so ingest order — and thus queue
        // seat assignment — matches the oracle's sorted-pending scan
        let pending_fresh = if self.cfg.debug_full_rebuild {
            None
        } else {
            let mut fresh: Vec<TaskRef> = self.fresh.drain().collect();
            fresh.sort_unstable_by_key(|t| (t.stage, t.index));
            Some(fresh)
        };
        let changed = self.shadow.diff(&self.node_views);
        let running_total: usize = self.node_views.iter().map(|v| v.running.len()).sum();
        let blocked_count = self.node_views.iter().filter(|v| v.blocked).count();
        self.max_pending = self.max_pending.max(self.pending_views.len());

        let job_arrivals: Vec<SimTime> = self
            .jobs
            .iter()
            .map(|j| j.submitted.unwrap_or(SimTime(u64::MAX)))
            .collect();
        // the persistent structures ride into the snapshot and come
        // straight back — no per-round reconstruction, no copies
        let input = OfferInput {
            now: self.now,
            cluster: self.cluster,
            app: &self.catalog.app,
            nodes: std::mem::take(&mut self.node_views),
            pending: std::mem::take(&mut self.pending_views),
            speculatable: Vec::new(),
            job_arrivals,
            job_tenants: self.catalog.job_tenants(),
            changed,
            pending_fresh,
        };
        let commands = self.sched.offer_round(&input);
        self.record(TraceEventKind::OfferRound {
            pending: input.pending.len(),
            running: running_total,
            blocked: blocked_count,
            commands: commands.len(),
        });
        self.node_views = input.nodes;
        self.pending_views = input.pending;
        for cmd in commands {
            self.apply_command(cmd);
        }
        self.offer_us.push(started.elapsed().as_micros() as u64);
    }

    fn apply_command(&mut self, cmd: Command) {
        match cmd {
            Command::Launch {
                task,
                node,
                use_gpu,
                speculative,
                reason,
            } => {
                if speculative {
                    return; // serve mode offers no speculatable set
                }
                let TaskSt::Pending { attempt_no, since } =
                    self.stages[task.stage.index()].tasks[task.index]
                else {
                    // stale command: already launched or done
                    self.stale_drops += 1;
                    return;
                };
                let health = self.detector.health(node);
                if !self.nodes[node.index()].registered || health == NodeHealth::Dead {
                    // launch to a dead node is a lost RPC; the scheduler
                    // dequeued the task, so warrant its re-ingest
                    self.dead_drops += 1;
                    self.fresh.insert(task);
                    return;
                }
                if let Some(el) = &self.elastic {
                    // elastic races mirror the dead-node race: the view
                    // the scheduler placed against went stale mid-round
                    if !el.provisioned[node.index()] {
                        self.autoscale_drops += 1;
                        self.fresh.insert(task);
                        return;
                    }
                    if el.drain_deadline[node.index()].is_some() {
                        self.preempt_drops += 1;
                        self.fresh.insert(task);
                        return;
                    }
                }
                let stage = self.catalog.app.stage(task.stage);
                let demand = &stage.tasks[task.index].demand;
                let spec = self.cluster.node(node);
                let gpu = use_gpu && spec.gpus > 0 && demand.is_gpu_capable();
                let (dur, breakdown) = estimate(demand, spec, gpu);
                let (process_nodes, node_local) = self.preferred_nodes(task.stage, task.index);
                let locality = if process_nodes.contains(&node) {
                    Locality::ProcessLocal
                } else if node_local.contains(&node) {
                    Locality::NodeLocal
                } else if node_local.iter().any(|&n| self.cluster.same_rack(n, node)) {
                    Locality::RackLocal
                } else {
                    Locality::Any
                };
                let nst = &mut self.nodes[node.index()];
                nst.mem_in_use += demand.peak_mem;
                nst.running.push(RunningSt {
                    task,
                    attempt: attempt_no,
                    launched_at: self.now,
                    peak_mem: demand.peak_mem,
                    use_gpu: gpu,
                    locality,
                    breakdown,
                });
                self.stages[task.stage.index()].tasks[task.index] = TaskSt::Running {
                    node,
                    attempt: attempt_no,
                };
                self.dirty_nodes[node.index()] = true;
                self.pending_gone.insert(task);
                self.dispatch_us.push(self.now.since(since).0);
                self.launched += 1;
                let launch_job = self.catalog.stage_jobs[task.stage.index()];
                self.record(TraceEventKind::Launch {
                    task,
                    job: launch_job,
                    tenant: self.catalog.tenant_of(launch_job),
                    node,
                    attempt: attempt_no,
                    speculative: false,
                    use_gpu: gpu,
                    locality,
                    reason,
                });
                let hold = Duration::from_secs_f64(dur.as_secs_f64() * self.cfg.time_scale);
                // estimated resource shares ride along so the agent's
                // heartbeats can report real NIC/disk occupancy back
                let total = dur.as_secs_f64();
                let frac = |secs: f64| {
                    if total > 0.0 {
                        (secs / total).clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                };
                let net_frac = frac(
                    breakdown.get(BreakdownCategory::ShuffleNet).as_secs_f64()
                        + breakdown
                            .get(BreakdownCategory::Serialization)
                            .as_secs_f64(),
                );
                let disk_frac = frac(
                    breakdown.get(BreakdownCategory::HdfsDisk).as_secs_f64()
                        + breakdown.get(BreakdownCategory::ShuffleWrite).as_secs_f64(),
                );
                self.outbox.send(
                    node,
                    WorkerCommand::Launch {
                        task,
                        attempt: attempt_no,
                        use_gpu: gpu,
                        hold,
                        net_frac,
                        disk_frac,
                    },
                );
            }
            Command::KillAndRequeue { task, node, reason: _ } => {
                let TaskSt::Running { node: on, .. } =
                    self.stages[task.stage.index()].tasks[task.index]
                else {
                    return; // stale view: not running anymore
                };
                if on != node {
                    return; // stale view: moved since the offer
                }
                self.record(TraceEventKind::KillRequeue { task, node });
                // the attempt stays "running" until the worker confirms
                // with Failed { Preempted } — the confirmation is an
                // external event, so replay sees the same ordering
                self.outbox.send(node, WorkerCommand::Preempt { task });
            }
        }
    }

    // ---- reporting -------------------------------------------------------

    pub(crate) fn report(&self) -> ServeReport {
        let lat: Vec<f64> = self.dispatch_us.iter().map(|&us| us as f64).collect();
        let offer: Vec<f64> = self.offer_us.iter().map(|&us| us as f64).collect();
        let jobs_submitted = self.jobs.iter().filter(|j| j.submitted.is_some()).count();
        let jobs_completed = self.jobs.iter().filter(|j| j.completed.is_some()).count();
        let lost_tasks = self
            .kill_pending
            .keys()
            .filter(|t| !matches!(self.stages[t.stage.index()].tasks[t.index], TaskSt::Done))
            .count();
        ServeReport {
            digest: self.trace.digest(),
            events_recorded: self.trace.recorded(),
            jobs_submitted,
            jobs_completed,
            launched: self.launched,
            completed: self.completed,
            failed: self.failed,
            lost_tasks,
            max_pending: self.max_pending,
            dispatch_p50_us: if lat.is_empty() {
                0
            } else {
                quantile(&lat, 0.50) as u64
            },
            dispatch_p99_us: if lat.is_empty() {
                0
            } else {
                quantile(&lat, 0.99) as u64
            },
            offer_rounds: self.round,
            offer_p50_us: if offer.is_empty() {
                0
            } else {
                quantile(&offer, 0.50) as u64
            },
            offer_p95_us: if offer.is_empty() {
                0
            } else {
                quantile(&offer, 0.95) as u64
            },
            stale_launch_drops: self.stale_drops,
            dead_launch_drops: self.dead_drops,
            autoscale_launch_drops: self.autoscale_drops,
            preempt_launch_drops: self.preempt_drops,
            preemptions: self.preemptions,
            provisions: self.provisions,
            decommissions: self.decommissions,
            makespan: SimDuration(self.now.0),
            clean: !self.aborted && jobs_submitted == jobs_completed,
        }
    }
}
