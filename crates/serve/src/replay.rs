//! The replay oracle: re-run a serve input log through the
//! deterministic calendar and check the driver makes identical
//! decisions.
//!
//! Externals from the log are pre-scheduled into the [`Calendar`] at
//! their recorded stamps *before* the driver runs, so they carry lower
//! insertion sequence numbers than any timer the driver schedules while
//! running — the calendar's FIFO tie-break then reproduces the wall
//! source's external-wins-ties rule exactly (see
//! [`rupam_simcore::source`]). The driver's periodic ticks are not in
//! the log: the replayed driver re-derives them itself, at the same
//! deadlines, because tick timers pop at their deadline in both modes.
//!
//! [`Calendar`]: rupam_simcore::Calendar

use rupam_cluster::ClusterSpec;
use rupam_dag::MergedStream;
use rupam_exec::scheduler::Scheduler;
use rupam_simcore::{Calendar, SimTime};

use crate::driver::{Outbox, ServeConfig, ServeDriver, ServeReport};
use crate::error::ServeError;
use crate::proto::ServeEvent;

/// Replay `log` (a live run's stamped external inputs, from
/// [`crate::ServeOutcome::log`]) through a calendar-driven copy of the
/// serve driver. Returns the replayed report; its `digest` must equal
/// the live run's for the run to be certified deterministic.
pub fn replay(
    cluster: &ClusterSpec,
    catalog: &MergedStream,
    sched: &mut (dyn Scheduler + Send),
    cfg: &ServeConfig,
    log: &[(SimTime, ServeEvent)],
) -> Result<ServeReport, ServeError> {
    let mut cal: Calendar<ServeEvent> = Calendar::new();
    for (at, ev) in log {
        cal.schedule(*at, ev.clone());
    }
    let mut drv = ServeDriver::new(cluster, catalog, cfg, sched, cal, Outbox::Replay);
    drv.run()?;
    Ok(drv.report())
}
