//! `rupam-serve` — run the RUPAM scheduler as a live wall-clock service
//! against a synthetic worker fleet, then certify the run with the
//! sim-mode replay oracle.
//!
//! ```text
//! rupam-serve [--workers N] [--jobs J] [--tasks T] [--time-scale F]
//!             [--faults FILE] [--no-replay-check]
//! ```
//!
//! Exits non-zero if the run aborts, loses tasks, or (unless disabled)
//! the replayed decision-trace digest differs from the live one.

use std::process::ExitCode;
use std::sync::Arc;

use rupam::{RupamConfig, RupamScheduler};
use rupam_faults::FaultScript;
use rupam_serve::testbed::{build_fleet, pressure_stream};
use rupam_serve::{replay, server, ServeConfig};

struct Args {
    workers: usize,
    jobs: usize,
    tasks: usize,
    time_scale: f64,
    faults: Option<String>,
    replay_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 16,
        jobs: 8,
        tasks: 32,
        time_scale: 0.002,
        faults: None,
        replay_check: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--tasks" => {
                args.tasks = value("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--time-scale" => {
                args.time_scale = value("--time-scale")?
                    .parse()
                    .map_err(|e| format!("--time-scale: {e}"))?
            }
            "--faults" => args.faults = Some(value("--faults")?),
            "--no-replay-check" => args.replay_check = false,
            "--help" | "-h" => {
                println!(
                    "usage: rupam-serve [--workers N] [--jobs J] [--tasks T] \
                     [--time-scale F] [--faults FILE] [--no-replay-check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rupam-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let script = match &args.faults {
        None => FaultScript::empty(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("rupam-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FaultScript::parse_toml(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("rupam-serve: bad fault script {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let cluster = Arc::new(build_fleet(args.workers));
    let catalog = Arc::new(pressure_stream(args.jobs, args.tasks));
    let mut cfg = ServeConfig {
        time_scale: args.time_scale,
        ..ServeConfig::default()
    };
    // Detector thresholds are authored in sim time but enforced as wall
    // durations by the serve driver; scale them like task holds so
    // failure detection keeps pace with the accelerated clock, but never
    // below a few heartbeat intervals or a slow runner would declare
    // healthy workers dead.
    let hb = cfg.worker_heartbeat.as_micros() as u64;
    let scale = |d: rupam_simcore::time::SimDuration, floor_beats: u64| {
        rupam_simcore::time::SimDuration(
            ((d.0 as f64 * args.time_scale) as u64).max(hb * floor_beats),
        )
    };
    cfg.sim.faults.suspect_after = scale(cfg.sim.faults.suspect_after, 4);
    cfg.sim.faults.dead_after = scale(cfg.sim.faults.dead_after, 10);

    println!(
        "rupam-serve: {} workers, {} jobs x {} tasks, time-scale {}",
        args.workers, args.jobs, args.tasks, args.time_scale
    );

    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        cfg.clone(),
        &script,
    );
    let mut client = handle.client.clone();
    for j in 0..catalog.jobs.len() {
        if let Err(e) = client.submit(rupam_dag::app::JobId(j)) {
            eprintln!("rupam-serve: submit failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = client.drain() {
        eprintln!("rupam-serve: drain failed: {e}");
        return ExitCode::FAILURE;
    }
    drop(client);

    let outcome = match handle.wait() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rupam-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = &outcome.report;
    println!(
        "drained: jobs {}/{} launched {} completed {} failed {} lost {}",
        r.jobs_completed, r.jobs_submitted, r.launched, r.completed, r.failed, r.lost_tasks
    );
    println!(
        "dispatch p50 {} us, p99 {} us; max pending {}; makespan {:.3} s; digest {:016x}",
        r.dispatch_p50_us,
        r.dispatch_p99_us,
        r.max_pending,
        r.makespan.as_secs_f64(),
        r.digest
    );
    println!(
        "offers: {} rounds, p50 {} us, p95 {} us; dropped launches: {} stale, {} dead-node",
        r.offer_rounds, r.offer_p50_us, r.offer_p95_us, r.stale_launch_drops, r.dead_launch_drops
    );

    let mut ok = r.clean && r.lost_tasks == 0;
    if !ok {
        eprintln!(
            "rupam-serve: UNCLEAN drain (clean={}, lost={})",
            r.clean, r.lost_tasks
        );
    }

    if args.replay_check {
        let mut oracle = RupamScheduler::new(RupamConfig::default());
        match replay(&cluster, &catalog, &mut oracle, &cfg, &outcome.log) {
            Ok(replayed) => {
                if replayed.digest == r.digest {
                    println!(
                        "replay: digest match ({:016x}) — run is deterministic",
                        r.digest
                    );
                } else {
                    eprintln!(
                        "replay: DIGEST MISMATCH live {:016x} vs replay {:016x}",
                        r.digest, replayed.digest
                    );
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("replay: failed: {e}");
                ok = false;
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
