//! Serve-mode error type: engine errors plus the thread/channel failure
//! modes that only exist once real threads are involved.

use rupam_exec::EngineError;

/// Everything that can go wrong running the live service.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The driver's core loop failed (see [`EngineError`]).
    Engine(EngineError),
    /// A server-side thread panicked; the payload is its panic message.
    Thread(String),
    /// A channel endpoint hung up while the other side still needed it.
    Disconnected(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "serve driver failed: {e}"),
            ServeError::Thread(msg) => write!(f, "serve thread panicked: {msg}"),
            ServeError::Disconnected(who) => write!(f, "{who} channel disconnected"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::SimTime;

    #[test]
    fn wraps_engine_errors_with_source_chain() {
        let err: ServeError = EngineError::SourceDisconnected { at: SimTime(3) }.into();
        assert!(err.to_string().contains("disconnected"));
        let src = std::error::Error::source(&err).expect("source chain");
        assert!(src.downcast_ref::<EngineError>().is_some());
    }

    #[test]
    fn crosses_thread_boundaries_as_boxed_error() {
        let (tx, rx) = std::sync::mpsc::channel::<Box<dyn std::error::Error + Send + Sync>>();
        std::thread::spawn(move || {
            tx.send(Box::new(ServeError::Disconnected("worker")))
                .unwrap();
        })
        .join()
        .unwrap();
        assert!(rx.recv().unwrap().to_string().contains("worker"));
    }
}
