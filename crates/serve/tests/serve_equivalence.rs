//! Serve-mode acceptance tests: the live wall-clock service must drain
//! cleanly and its decision trace must be reproducible by replaying the
//! input log through the deterministic calendar engine.

use std::sync::Arc;
use std::time::Duration;

use rupam::{RupamConfig, RupamScheduler};
use rupam_dag::app::JobId;
use rupam_faults::FaultScript;
use rupam_serve::testbed::{build_fleet, pressure_stream};
use rupam_serve::{replay, server, ServeConfig, ServeOutcome};
use rupam_simcore::time::SimDuration;

fn run_live(
    workers: usize,
    jobs: usize,
    tasks: usize,
    cfg: &ServeConfig,
    script: &FaultScript,
) -> ServeOutcome {
    let cluster = Arc::new(build_fleet(workers));
    let catalog = Arc::new(pressure_stream(jobs, tasks));
    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        cfg.clone(),
        script,
    );
    let mut client = handle.client.clone();
    for j in 0..jobs {
        client.submit(JobId(j)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    handle.wait().expect("serve run")
}

fn check_replay(workers: usize, jobs: usize, tasks: usize, cfg: &ServeConfig, out: &ServeOutcome) {
    let cluster = build_fleet(workers);
    let catalog = pressure_stream(jobs, tasks);
    let mut sched = RupamScheduler::new(RupamConfig::default());
    let replayed = replay(&cluster, &catalog, &mut sched, cfg, &out.log).expect("replay succeeds");
    assert_eq!(
        replayed.digest,
        out.report.digest,
        "live and replayed decision-trace digests must be byte-identical \
         (live {:016x} vs replay {:016x}, {} events)",
        out.report.digest,
        replayed.digest,
        out.log.len()
    );
    assert_eq!(replayed.jobs_completed, out.report.jobs_completed);
    assert_eq!(replayed.launched, out.report.launched);
}

#[test]
fn live_run_replays_to_identical_digest() {
    let cfg = ServeConfig {
        time_scale: 0.002,
        ..ServeConfig::default()
    };
    let out = run_live(12, 4, 24, &cfg, &FaultScript::empty());
    assert!(
        out.report.clean,
        "healthy run must drain cleanly: {:?}",
        out.report
    );
    assert_eq!(out.report.jobs_completed, 4);
    assert_eq!(out.report.lost_tasks, 0);
    assert_eq!(out.report.completed, 4 * 24);
    check_replay(12, 4, 24, &cfg, &out);
}

#[test]
fn chaos_smoke_drains_cleanly_and_replays() {
    // the committed chaos script the sim digest gate uses, acted out by
    // real worker threads at 50x speed
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../chaos-smoke.toml"
    ))
    .expect("chaos-smoke.toml is committed at the repo root");
    let script = FaultScript::parse_toml(&text).expect("script parses");

    let mut cfg = ServeConfig {
        tick: Duration::from_millis(10),
        worker_heartbeat: Duration::from_millis(10),
        time_scale: 0.02, // crash@4s lands at 80ms wall
        max_wall: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    // detector thresholds are wall durations in serve mode; scale them
    // with the script so suspicion/death fire while the run is alive
    cfg.sim.faults.suspect_after = SimDuration(60_000); // 60 ms
    cfg.sim.faults.dead_after = SimDuration(200_000); // 200 ms

    let out = run_live(12, 4, 24, &cfg, &script);
    assert!(
        out.report.clean,
        "chaos run must still drain cleanly: {:?}",
        out.report
    );
    assert_eq!(
        out.report.jobs_completed, 4,
        "every job finishes despite faults"
    );
    assert_eq!(
        out.report.lost_tasks, 0,
        "recovery must re-run every killed task"
    );
    check_replay(12, 4, 24, &cfg, &out);
}

#[test]
fn elastic_churn_drains_cleanly_and_replays() {
    // the live service under a churning spot tier: the four weakest
    // nodes provision on backlog, drain on price-correlated preemption
    // notices, and the whole run must still replay to an identical
    // decision-trace digest from the stamped input log (elastic
    // stepping rides the internally re-derived tick timers and a
    // dedicated seeded RNG, so live and replay draw the same sequence)
    let mut elastic =
        rupam_elastic::ElasticConfig::spot_tail(12, 4, rupam_elastic::SpotPolicy::Greedy);
    elastic.check_secs = 1.0;
    elastic.scale_up_backlog = 0.0;
    elastic.scale_down_idle_secs = 5.0;
    elastic.provision_secs = 0.5;
    elastic.pools[0].preempt_base = 0.1;
    elastic.pools[0].notice_secs = 1.0;

    let mut cfg = ServeConfig {
        tick: Duration::from_millis(2),
        worker_heartbeat: Duration::from_millis(5),
        time_scale: 0.002,
        max_wall: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    cfg.sim.elastic = elastic;

    let out = run_live(12, 6, 24, &cfg, &FaultScript::empty());
    assert!(
        out.report.clean,
        "churning run must still drain cleanly: {:?}",
        out.report
    );
    assert_eq!(out.report.jobs_completed, 6);
    assert_eq!(
        out.report.lost_tasks, 0,
        "preemption drains must re-run every killed task"
    );
    assert!(
        out.report.provisions > 0,
        "backlog must pull the spot tail into the fleet: {:?}",
        out.report
    );
    check_replay(12, 6, 24, &cfg, &out);
}

#[test]
fn drain_with_no_submissions_shuts_down() {
    let cluster = Arc::new(build_fleet(8));
    let catalog = Arc::new(pressure_stream(2, 4));
    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        ServeConfig::default(),
        &FaultScript::empty(),
    );
    let mut client = handle.client.clone();
    client.drain().expect("drain");
    drop(client);
    let out = handle.wait().expect("clean shutdown");
    assert!(out.report.clean);
    assert_eq!(out.report.jobs_submitted, 0);
    assert_eq!(out.report.launched, 0);
}
