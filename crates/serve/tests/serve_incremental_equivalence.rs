//! Incremental-vs-rebuild equivalence: the serve driver's persistent
//! offer state (in-place node views, mutated pending list, memoised
//! placement hints) must be decision-for-decision identical to the
//! debug full-rebuild path that reconstructs the `OfferInput` from the
//! authoritative tables every round.
//!
//! Each test runs live once with the persistent path, then replays the
//! captured input log twice — once per construction path — and demands
//! all three decision-trace digests match byte for byte. Any divergence
//! (a stale view field, a pending entry that outlived its launch, a
//! shuffle preference that missed an invalidation) shifts a launch and
//! changes the digest.

use std::sync::Arc;
use std::time::Duration;

use rupam::{RupamConfig, RupamScheduler};
use rupam_dag::app::JobId;
use rupam_faults::FaultScript;
use rupam_serve::testbed::{build_fleet, pressure_stream};
use rupam_serve::{replay, server, ServeConfig, ServeOutcome};
use rupam_simcore::time::SimDuration;

fn run_live(
    workers: usize,
    jobs: usize,
    tasks: usize,
    cfg: &ServeConfig,
    script: &FaultScript,
) -> ServeOutcome {
    let cluster = Arc::new(build_fleet(workers));
    let catalog = Arc::new(pressure_stream(jobs, tasks));
    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        cfg.clone(),
        script,
    );
    let mut client = handle.client.clone();
    for j in 0..jobs {
        client.submit(JobId(j)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    handle.wait().expect("serve run")
}

/// Replay `out.log` down both construction paths and assert both
/// digests equal the live one.
fn check_both_paths(
    workers: usize,
    jobs: usize,
    tasks: usize,
    cfg: &ServeConfig,
    out: &ServeOutcome,
) {
    let cluster = build_fleet(workers);
    let catalog = pressure_stream(jobs, tasks);

    let mut incremental_cfg = cfg.clone();
    incremental_cfg.debug_full_rebuild = false;
    let mut sched = RupamScheduler::new(RupamConfig::default());
    let incremental = replay(&cluster, &catalog, &mut sched, &incremental_cfg, &out.log)
        .expect("incremental replay succeeds");
    assert_eq!(
        incremental.digest, out.report.digest,
        "incremental replay must reproduce the live digest"
    );

    let mut rebuild_cfg = cfg.clone();
    rebuild_cfg.debug_full_rebuild = true;
    let mut sched = RupamScheduler::new(RupamConfig::default());
    let rebuild = replay(&cluster, &catalog, &mut sched, &rebuild_cfg, &out.log)
        .expect("full-rebuild replay succeeds");
    assert_eq!(
        rebuild.digest, out.report.digest,
        "full-rebuild replay must reproduce the live digest — the \
         persistent offer state diverged from the from-scratch snapshot \
         (live {:016x}, rebuild {:016x})",
        out.report.digest, rebuild.digest
    );
    assert_eq!(rebuild.launched, incremental.launched);
    assert_eq!(rebuild.jobs_completed, incremental.jobs_completed);
}

#[test]
fn healthy_run_matches_down_both_paths() {
    let cfg = ServeConfig {
        time_scale: 0.002,
        ..ServeConfig::default()
    };
    let out = run_live(12, 4, 24, &cfg, &FaultScript::empty());
    assert!(
        out.report.clean,
        "healthy run must drain cleanly: {:?}",
        out.report
    );
    assert!(out.report.offer_rounds > 0);
    check_both_paths(12, 4, 24, &cfg, &out);
}

#[test]
fn chaos_smoke_matches_down_both_paths() {
    // the committed chaos script: crashes, restarts, dropouts and flaky
    // OOMs exercise every pending-list mutation (re-pends, node-lost
    // victims, recompute) and every preference invalidation
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../chaos-smoke.toml"
    ))
    .expect("chaos-smoke.toml is committed at the repo root");
    let script = FaultScript::parse_toml(&text).expect("script parses");

    let mut cfg = ServeConfig {
        tick: Duration::from_millis(10),
        worker_heartbeat: Duration::from_millis(10),
        time_scale: 0.02,
        max_wall: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    cfg.sim.faults.suspect_after = SimDuration(60_000); // 60 ms
    cfg.sim.faults.dead_after = SimDuration(200_000); // 200 ms

    let out = run_live(12, 4, 24, &cfg, &script);
    assert!(
        out.report.clean,
        "chaos run must still drain cleanly: {:?}",
        out.report
    );
    assert_eq!(out.report.lost_tasks, 0);
    check_both_paths(12, 4, 24, &cfg, &out);
}

// ---------------------------------------------------------------------
// Seat-partition property: the per-tenant shards behind the serve
// path's `pending_fresh` warranty. The tenant-aware dispatcher probes
// `special_kind_of` / `plain_kind_of` instead of filtering the global
// split per round, so the shards must equal the filtered global
// partition — same entries, same seat order, same floors — after *any*
// interleaving of ingestion, launch/removal, and `DB_task_char`-driven
// reclassification. The reference reconstruction below (filter the
// global split by owner) is exactly the from-scratch scan the
// non-incremental tenant path performs; the property pins the
// persistent shards to it.

mod seat_partition {
    use proptest::prelude::*;
    use rupam::tm::TaskQueues;
    use rupam_cluster::ResourceKind;
    use rupam_dag::app::StageId;
    use rupam_dag::{TaskRef, TenantId};
    use rupam_simcore::time::SimTime;
    use rupam_simcore::units::ByteSize;

    const TENANTS: usize = 3;
    const SLOTS: usize = 24;

    fn task(slot: usize) -> TaskRef {
        TaskRef {
            stage: StageId(slot / 8),
            index: slot % 8,
        }
    }

    fn tenant(slot: usize) -> TenantId {
        TenantId(slot % TENANTS)
    }

    #[derive(Debug, Clone)]
    enum Op {
        /// A view became pending: enqueue into a kind subset (or
        /// resurrect the historical seats of a re-pended task).
        Enqueue {
            slot: usize,
            kinds: Vec<ResourceKind>,
            special: bool,
            peak_mib: u64,
        },
        /// A `DB_task_char` write changed the classification of a
        /// still-queued task.
        Reclassify {
            slot: usize,
            special: bool,
            peak_mib: u64,
        },
        /// The task launched (or its stage was cancelled): leave every
        /// queue.
        Remove { slot: usize },
    }

    /// Ops drawn from integer tuples (the vendored proptest carries no
    /// oneof/subsequence combinators): `sel` weights enqueue :
    /// reclassify : remove at 3 : 2 : 2, `bits` is a 5-bit kind mask
    /// (empty masks fall back to the CPU queue) plus the special flag.
    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u32..7, 0usize..SLOTS, 0u32..64, 64u64..512).prop_map(|(sel, slot, bits, peak_mib)| {
            let special = bits & 32 != 0;
            match sel {
                0..=2 => {
                    let mut kinds: Vec<ResourceKind> = ResourceKind::ALL
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| bits & (1 << i) != 0)
                        .map(|(_, &k)| k)
                        .collect();
                    if kinds.is_empty() {
                        kinds.push(ResourceKind::Cpu);
                    }
                    Op::Enqueue { slot, kinds, special, peak_mib }
                }
                3 | 4 => Op::Reclassify { slot, special, peak_mib },
                _ => Op::Remove { slot },
            }
        })
    }

    /// `shard[t] == filter(global, tenant == t)` for both sides of the
    /// split, plus floor agreement and exact coverage of the union.
    fn assert_partition(q: &TaskQueues) {
        for kind in ResourceKind::ALL {
            let special: Vec<(u64, TaskRef)> = q.special_kind(kind).collect();
            let plain: Vec<(u64, TaskRef, ByteSize)> = q.plain_kind(kind).collect();
            let mut covered = 0usize;
            for t in 0..TENANTS {
                let t = TenantId(t);
                let want_s: Vec<(u64, TaskRef)> = special
                    .iter()
                    .copied()
                    .filter(|(_, task)| q.tenant_of(task) == t)
                    .collect();
                let got_s: Vec<(u64, TaskRef)> = q.special_kind_of(kind, t).collect();
                assert_eq!(got_s, want_s, "{kind:?} special shard diverged for {t:?}");
                let want_p: Vec<(u64, TaskRef, ByteSize)> = plain
                    .iter()
                    .copied()
                    .filter(|(_, task, _)| q.tenant_of(task) == t)
                    .collect();
                let got_p: Vec<(u64, TaskRef, ByteSize)> = q.plain_kind_of(kind, t).collect();
                assert_eq!(got_p, want_p, "{kind:?} plain shard diverged for {t:?}");
                assert_eq!(
                    q.plain_floor_of(kind, t),
                    want_p.iter().map(|&(_, _, p)| p).min(),
                    "{kind:?} plain floor diverged for {t:?}"
                );
                covered += got_s.len() + got_p.len();
            }
            assert_eq!(
                covered,
                special.len() + plain.len(),
                "{kind:?} shards must cover the global split exactly"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn shards_track_filtered_global_split(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            let mut q = TaskQueues::new();
            q.set_tenant_mode();
            for slot in 0..SLOTS {
                q.note_tenant(task(slot), tenant(slot));
            }
            for op in ops {
                match op {
                    Op::Enqueue { slot, kinds, special, peak_mib } => {
                        q.enqueue(task(slot), &kinds, SimTime::ZERO, special, ByteSize::mib(peak_mib));
                    }
                    Op::Reclassify { slot, special, peak_mib } => {
                        q.reclassify(task(slot), special, ByteSize::mib(peak_mib));
                    }
                    Op::Remove { slot } => {
                        q.remove(&task(slot));
                    }
                }
                assert_partition(&q);
            }
        }
    }
}
