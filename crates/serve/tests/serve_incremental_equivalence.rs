//! Incremental-vs-rebuild equivalence: the serve driver's persistent
//! offer state (in-place node views, mutated pending list, memoised
//! placement hints) must be decision-for-decision identical to the
//! debug full-rebuild path that reconstructs the `OfferInput` from the
//! authoritative tables every round.
//!
//! Each test runs live once with the persistent path, then replays the
//! captured input log twice — once per construction path — and demands
//! all three decision-trace digests match byte for byte. Any divergence
//! (a stale view field, a pending entry that outlived its launch, a
//! shuffle preference that missed an invalidation) shifts a launch and
//! changes the digest.

use std::sync::Arc;
use std::time::Duration;

use rupam::{RupamConfig, RupamScheduler};
use rupam_dag::app::JobId;
use rupam_faults::FaultScript;
use rupam_serve::testbed::{build_fleet, pressure_stream};
use rupam_serve::{replay, server, ServeConfig, ServeOutcome};
use rupam_simcore::time::SimDuration;

fn run_live(
    workers: usize,
    jobs: usize,
    tasks: usize,
    cfg: &ServeConfig,
    script: &FaultScript,
) -> ServeOutcome {
    let cluster = Arc::new(build_fleet(workers));
    let catalog = Arc::new(pressure_stream(jobs, tasks));
    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        cfg.clone(),
        script,
    );
    let mut client = handle.client.clone();
    for j in 0..jobs {
        client.submit(JobId(j)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    handle.wait().expect("serve run")
}

/// Replay `out.log` down both construction paths and assert both
/// digests equal the live one.
fn check_both_paths(
    workers: usize,
    jobs: usize,
    tasks: usize,
    cfg: &ServeConfig,
    out: &ServeOutcome,
) {
    let cluster = build_fleet(workers);
    let catalog = pressure_stream(jobs, tasks);

    let mut incremental_cfg = cfg.clone();
    incremental_cfg.debug_full_rebuild = false;
    let mut sched = RupamScheduler::new(RupamConfig::default());
    let incremental = replay(&cluster, &catalog, &mut sched, &incremental_cfg, &out.log)
        .expect("incremental replay succeeds");
    assert_eq!(
        incremental.digest, out.report.digest,
        "incremental replay must reproduce the live digest"
    );

    let mut rebuild_cfg = cfg.clone();
    rebuild_cfg.debug_full_rebuild = true;
    let mut sched = RupamScheduler::new(RupamConfig::default());
    let rebuild = replay(&cluster, &catalog, &mut sched, &rebuild_cfg, &out.log)
        .expect("full-rebuild replay succeeds");
    assert_eq!(
        rebuild.digest, out.report.digest,
        "full-rebuild replay must reproduce the live digest — the \
         persistent offer state diverged from the from-scratch snapshot \
         (live {:016x}, rebuild {:016x})",
        out.report.digest, rebuild.digest
    );
    assert_eq!(rebuild.launched, incremental.launched);
    assert_eq!(rebuild.jobs_completed, incremental.jobs_completed);
}

#[test]
fn healthy_run_matches_down_both_paths() {
    let cfg = ServeConfig {
        time_scale: 0.002,
        ..ServeConfig::default()
    };
    let out = run_live(12, 4, 24, &cfg, &FaultScript::empty());
    assert!(
        out.report.clean,
        "healthy run must drain cleanly: {:?}",
        out.report
    );
    assert!(out.report.offer_rounds > 0);
    check_both_paths(12, 4, 24, &cfg, &out);
}

#[test]
fn chaos_smoke_matches_down_both_paths() {
    // the committed chaos script: crashes, restarts, dropouts and flaky
    // OOMs exercise every pending-list mutation (re-pends, node-lost
    // victims, recompute) and every preference invalidation
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../chaos-smoke.toml"
    ))
    .expect("chaos-smoke.toml is committed at the repo root");
    let script = FaultScript::parse_toml(&text).expect("script parses");

    let mut cfg = ServeConfig {
        tick: Duration::from_millis(10),
        worker_heartbeat: Duration::from_millis(10),
        time_scale: 0.02,
        max_wall: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    cfg.sim.faults.suspect_after = SimDuration(60_000); // 60 ms
    cfg.sim.faults.dead_after = SimDuration(200_000); // 200 ms

    let out = run_live(12, 4, 24, &cfg, &script);
    assert!(
        out.report.clean,
        "chaos run must still drain cleanly: {:?}",
        out.report
    );
    assert_eq!(out.report.lost_tasks, 0);
    check_both_paths(12, 4, 24, &cfg, &out);
}
