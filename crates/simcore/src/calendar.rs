//! Event calendar: a priority queue of `(SimTime, E)` entries with
//! deterministic FIFO tie breaking among events scheduled for the same
//! instant. Determinism is load-bearing for the whole reproduction — every
//! experiment in the paper harness runs with fixed seeds and must produce
//! identical traces across runs and machines.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
///
/// Events popped from the calendar are totally ordered by `(time,
/// insertion sequence)`: two events scheduled for the same instant come
/// back in the order they were scheduled.
///
/// ```
/// use rupam_simcore::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime(20), "late");
/// cal.schedule(SimTime(10), "early");
/// assert_eq!(cal.pop(), Some((SimTime(10), "early")));
/// assert_eq!(cal.now(), SimTime(10));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar positioned at t = 0.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event
    /// (t = 0 before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` so the simulation
    /// degrades rather than corrupts its clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (used when an experiment aborts a run).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(30), "c");
        cal.schedule(SimTime(10), "a");
        cal.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut cal = Calendar::new();
        for i in 0..10 {
            cal.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(100), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime(100));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), 1);
        let (t, e) = cal.pop().unwrap();
        assert_eq!((t, e), (SimTime(10), 1));
        // schedule relative to the new `now`
        cal.schedule(cal.now() + SimDuration(5), 2);
        cal.schedule(cal.now() + SimDuration(1), 3);
        assert_eq!(cal.pop().unwrap().1, 3);
        assert_eq!(cal.pop().unwrap().1, 2);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime(1), ());
        cal.schedule(SimTime(2), ());
        assert_eq!(cal.len(), 2);
        cal.clear();
        assert!(cal.is_empty());
    }

    proptest! {
        /// Popped timestamps are non-decreasing, and same-timestamp events
        /// keep insertion order, for arbitrary schedules.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut cal = Calendar::new();
            for (i, t) in times.iter().enumerate() {
                cal.schedule(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = cal.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated among ties");
                    }
                }
                prop_assert_eq!(SimTime(times[idx]), t);
                last = Some((t, idx));
            }
        }
    }
}
