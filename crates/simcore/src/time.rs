//! Virtual time. `SimTime` is an absolute instant, `SimDuration` a span.
//! Both are microsecond-resolution `u64`s: fine enough for scheduler-delay
//! accounting, coarse enough that multi-hour workloads never overflow
//! (`u64::MAX` µs ≈ 584 000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant of simulated time, in microseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for next-event computations.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Instant `secs` seconds after the epoch.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative instant");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as floating point.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self - earlier`, saturating at zero (callers deal in monotone time,
    /// but saturation keeps accidental reorderings from panicking in
    /// release builds while debug builds assert).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "time went backwards: {self} < {earlier}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `secs` seconds.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// A span of whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A span of whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// The span in seconds, as floating point.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True iff the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_seconds() {
        let t = SimTime::from_secs_f64(12.5);
        assert_eq!(t.as_micros(), 12_500_000);
        assert!((t.as_secs_f64() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs_f64(1.0);
        let b = a + SimDuration::from_millis(250);
        assert!(b > a);
        assert_eq!((b - a).as_micros(), 250_000);
        assert_eq!(b.since(a), SimDuration::from_millis(250));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!((d * 0.5).as_secs_f64(), 5.0);
        assert_eq!((d / 4).as_secs_f64(), 2.5);
    }

    #[test]
    fn saturating_ops() {
        let d = SimDuration::from_secs(1);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::FAR_FUTURE.saturating_add(SimDuration::from_secs(1)),
            SimTime::FAR_FUTURE
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.0)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = SimTime::FAR_FUTURE + SimDuration(1);
    }
}
