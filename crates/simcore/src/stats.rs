//! Summary statistics used by the evaluation harness: mean, population
//! standard deviation, sample 95 % confidence intervals (the paper reports
//! "average execution time and 95 % confidence interval" over 5 runs), and
//! percentiles (Spark's speculation policy uses the 75th-percentile
//! completion quantile).

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Sample standard deviation (n − 1 denominator); 0.0 for fewer than two.
pub fn sample_stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95 % confidence interval of the mean, using the
/// two-sided Student-t critical value for small n (n ≤ 30) and 1.96 beyond.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    // t_{0.975, df} for df = 1..=30.
    const T975: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    let df = n - 1;
    let t = if df <= 30 { T975[df - 1] } else { 1.96 };
    t * sample_stddev(xs) / (n as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
/// statistics. Panics on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
/// Used to summarise speed-ups across workloads.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[3.0]), 0.0);
        assert_eq!(sample_stddev(&[3.0]), 0.0);
        assert_eq!(ci95_half_width(&[3.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn ci95_for_five_runs() {
        // five identical values => zero CI
        assert_eq!(ci95_half_width(&[7.0; 5]), 0.0);
        // known case: n=5, sd=1 => 2.776/sqrt(5)
        let xs = [
            0.0f64, 1.0, 2.0, 3.0, 4.0, // mean 2, sample sd sqrt(2.5)
        ];
        let expect = 2.776 * (2.5f64).sqrt() / (5.0f64).sqrt();
        assert!((ci95_half_width(&xs) - expect).abs() < 1e-9);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    proptest! {
        #[test]
        fn prop_quantile_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..=1.0) {
            let v = quantile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn prop_quantile_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
            prop_assert!(quantile(&xs, 0.25) <= quantile(&xs, 0.75) + 1e-9);
        }

        #[test]
        fn prop_stddev_nonneg(xs in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
            prop_assert!(stddev(&xs) >= 0.0);
            prop_assert!(sample_stddev(&xs) >= 0.0);
        }

        #[test]
        fn prop_mean_between_extremes(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            let m = mean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
