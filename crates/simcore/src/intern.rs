//! Interned strings for hot-path identity keys.
//!
//! Template keys (`"lr/gradient"`) are compared, hashed and copied on
//! every offer round — per pending task, per DB lookup, per trace
//! record. Keeping them as `String` meant a heap clone per touch. A
//! [`Sym`] is a `u32` handle into a global, append-only symbol table:
//! copies are free, equality is one integer compare, and the resolved
//! `&'static str` is always available for display and ordering.
//!
//! Determinism note: symbol *ids* depend on interning order, which is
//! not deterministic across runs (the bench harness interns from
//! parallel worker threads). Ids must therefore never influence
//! scheduling decisions or rendered output. That is why [`Ord`] and
//! [`Display`] go through the resolved string — only `Eq`/`Hash` (which
//! are order-insensitive) use the raw id.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

struct Interner {
    ids: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            ids: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// An interned string: a copyable `u32` handle to a `&'static str` in
/// the process-wide symbol table.
///
/// Interned strings are never freed; the table is meant for a bounded
/// vocabulary (stage template keys, scoped DB keys), not arbitrary data.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s`, returning its (process-wide) symbol.
    pub fn new(s: &str) -> Sym {
        if let Some(&id) = interner().read().unwrap().ids.get(s) {
            return Sym(id);
        }
        let mut table = interner().write().unwrap();
        if let Some(&id) = table.ids.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(table.strings.len()).expect("symbol table overflow");
        table.strings.push(leaked);
        table.ids.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().unwrap().strings[self.0 as usize]
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

// Ordered by string content, not id: ids are interning-order-dependent
// and must never leak into any deterministic ordering.
impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Sym::new("lr/gradient");
        let b = Sym::new("lr/gradient");
        let c = Sym::new("lr/agg");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "lr/gradient");
    }

    #[test]
    fn conversions_and_compares() {
        let s: Sym = "ts/sort".into();
        assert_eq!(s, "ts/sort");
        assert_eq!("ts/sort", s);
        let owned: Sym = String::from("ts/sort").into();
        assert_eq!(s, owned);
        assert_eq!(String::from(s), "ts/sort");
    }

    #[test]
    fn ordering_is_by_content() {
        // intern in reverse lexicographic order: ids and content disagree
        let b = Sym::new("zzz-order-test");
        let a = Sym::new("aaa-order-test");
        assert!(a < b, "Ord must follow string content, not intern order");
        let mut v = vec![b, a];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let syms: Vec<Sym> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Sym::new("race/key")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn debug_quotes_like_str() {
        let s = Sym::new("a/b");
        assert_eq!(format!("{s:?}"), "\"a/b\"");
        assert_eq!(format!("{s}"), "a/b");
    }
}
