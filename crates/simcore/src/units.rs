//! Data-size units. Shuffle volumes, memory capacities and I/O bandwidths
//! are all expressed in bytes (`ByteSize`); bandwidths are bytes/second as
//! `f64` because the fluid cost model divides them continuously.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// One kibibyte.
pub const KIB: u64 = 1 << 10;
/// One mebibyte.
pub const MIB: u64 = 1 << 20;
/// One gibibyte.
pub const GIB: u64 = 1 << 30;
/// One tebibyte.
pub const TIB: u64 = 1 << 40;

/// A size in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }
    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }
    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }
    /// A fractional number of gibibytes (for Table III's "0.95 GB" inputs).
    pub fn gib_f64(n: f64) -> Self {
        debug_assert!(n >= 0.0);
        ByteSize((n * GIB as f64).round() as u64)
    }

    /// Raw byte count.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// Size as floating-point bytes (for rate arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in mebibytes.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Size in gibibytes.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor, rounding to whole bytes.
    #[inline]
    pub fn scale(self, f: f64) -> ByteSize {
        debug_assert!(f >= 0.0 && f.is_finite());
        ByteSize((self.0 as f64 * f).round() as u64)
    }

    /// Integer division into `n` equal shards (last shard may be short).
    #[inline]
    pub fn per_shard(self, n: usize) -> ByteSize {
        assert!(n > 0);
        ByteSize(self.0 / n as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        debug_assert!(self.0 >= rhs.0, "ByteSize underflow");
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(rhs).expect("ByteSize overflow"))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TIB {
            write!(f, "{:.2} TiB", b as f64 / TIB as f64)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kib(2).bytes(), 2048);
        assert_eq!(ByteSize::mib(1).bytes(), MIB);
        assert_eq!(ByteSize::gib(3).bytes(), 3 * GIB);
        assert_eq!(ByteSize::gib_f64(0.5).bytes(), GIB / 2);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(10);
        let b = ByteSize::mib(4);
        assert_eq!(a + b, ByteSize::mib(14));
        assert_eq!(a - b, ByteSize::mib(6));
        assert_eq!(b * 3, ByteSize::mib(12));
        assert_eq!(a.saturating_sub(ByteSize::gib(1)), ByteSize::ZERO);
        assert_eq!(a.scale(0.5), ByteSize::mib(5));
        assert_eq!(ByteSize::mib(10).per_shard(5), ByteSize::mib(2));
    }

    #[test]
    fn sum_and_display() {
        let total: ByteSize = [ByteSize::mib(1), ByteSize::mib(2)].into_iter().sum();
        assert_eq!(total, ByteSize::mib(3));
        assert_eq!(format!("{}", ByteSize::gib(2)), "2.00 GiB");
        assert_eq!(format!("{}", ByteSize(512)), "512 B");
        assert_eq!(format!("{}", ByteSize::kib(1536)), "1.50 MiB");
    }

    #[test]
    fn conversions() {
        assert!((ByteSize::gib(1).as_mib() - 1024.0).abs() < 1e-9);
        assert!((ByteSize::mib(512).as_gib() - 0.5).abs() < 1e-9);
    }
}
