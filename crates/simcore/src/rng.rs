//! Seed-derived RNG streams.
//!
//! Every stochastic component (workload generator, jitter model, failure
//! injection, …) gets its *own* stream derived from the experiment seed and
//! a stable label. Adding a random draw to one component therefore never
//! shifts the values another component sees — experiments stay
//! reproducible as the codebase evolves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives independent [`StdRng`] streams from a single experiment seed.
#[derive(Clone, Debug)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// A factory for experiment seed `seed`.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A dedicated stream for the component identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream; distinct
    /// labels yield streams that are independent for all practical purposes
    /// (the label is mixed into the seed with an FNV-1a hash followed by a
    /// SplitMix64 finalizer).
    pub fn stream(&self, label: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mixed = splitmix64(self.seed ^ h);
        StdRng::seed_from_u64(mixed)
    }

    /// A sub-stream for the `index`-th instance of a replicated component
    /// (e.g. per-task jitter).
    pub fn indexed_stream(&self, label: &str, index: usize) -> StdRng {
        self.stream(&format!("{label}#{index}"))
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draw a sample from a Zipf-like distribution over `n` ranks with skew
/// exponent `s` (s = 0 is uniform). Returns a rank in `0..n`.
///
/// Used by workload generators to model data skew (the paper's §II-B2
/// motivation: tasks within one stage differ heavily because of skewed
/// partition and shuffle sizes).
pub fn zipf_rank(rng: &mut impl Rng, n: usize, s: f64) -> usize {
    assert!(n > 0, "zipf over empty domain");
    if s == 0.0 {
        return rng.gen_range(0..n);
    }
    // Inverse-CDF sampling over the (small) rank domain. Workload
    // generators call this with n = partition counts (hundreds), so the
    // linear scan is fine and keeps the dependency footprint at plain
    // `rand`.
    let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
    let target = rng.gen_range(0.0..1.0) * norm;
    let mut acc = 0.0;
    for k in 1..=n {
        acc += (k as f64).powf(-s);
        if acc >= target {
            return k - 1;
        }
    }
    n - 1
}

/// Multiplicative jitter in `[1 - amplitude, 1 + amplitude]`.
pub fn jitter(rng: &mut impl Rng, amplitude: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&amplitude));
    1.0 + rng.gen_range(-amplitude..=amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::RngCore;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("alpha");
        let mut b = f.stream("alpha");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream("alpha");
        let mut b = f.stream("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream("x");
        let mut b = RngFactory::new(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = RngFactory::new(7);
        let mut s0 = f.indexed_stream("task", 0);
        let mut s1 = f.indexed_stream("task", 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let f = RngFactory::new(3);
        let mut rng = f.stream("zipf");
        let n = 50;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            counts[zipf_rank(&mut rng, n, 1.2)] += 1;
        }
        assert!(
            counts[0] > counts[n / 2] * 5,
            "rank 0 should dominate: {counts:?}"
        );
        assert!(counts[0] > counts[n - 1] * 10);
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let f = RngFactory::new(9);
        let mut rng = f.stream("uniform");
        let n = 10;
        let mut counts = vec![0usize; n];
        for _ in 0..50_000 {
            counts[zipf_rank(&mut rng, n, 0.0)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 5_000.0).abs() < 600.0,
                "not uniform: {counts:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_zipf_in_range(seed in any::<u64>(), n in 1usize..64, s in 0.0f64..3.0) {
            let mut rng = RngFactory::new(seed).stream("prop");
            let r = zipf_rank(&mut rng, n, s);
            prop_assert!(r < n);
        }

        #[test]
        fn prop_jitter_bounds(seed in any::<u64>(), amp in 0.0f64..0.99) {
            let mut rng = RngFactory::new(seed).stream("jit");
            let j = jitter(&mut rng, amp);
            prop_assert!(j >= 1.0 - amp - 1e-12 && j <= 1.0 + amp + 1e-12);
        }
    }
}
