//! Time-weighted series recording.
//!
//! The paper's Figures 2, 8 and 9 are built from sampled node utilisation
//! over time. [`TimeSeries`] records piecewise-constant values (a
//! utilisation level holds until the next recording) and supports
//! time-weighted averages, resampling onto a fixed grid, and per-instant
//! alignment across series (for the Fig-9 standard-deviation-across-nodes
//! curves).

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant series of `(time, value)` samples.
///
/// Values are interpreted as holding from their timestamp until the next
/// sample's timestamp.
///
/// ```
/// use rupam_simcore::{SimTime, TimeSeries};
///
/// let mut cpu = TimeSeries::new();
/// cpu.record(SimTime::from_secs_f64(0.0), 0.25);
/// cpu.record(SimTime::from_secs_f64(2.0), 0.75);
/// assert_eq!(cpu.value_at(SimTime::from_secs_f64(1.9)), Some(0.25));
/// let mean = cpu
///     .time_weighted_mean(SimTime::ZERO, SimTime::from_secs_f64(4.0))
///     .unwrap();
/// assert!((mean - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Record that the observed quantity has value `value` from `at`
    /// onwards. Timestamps must be non-decreasing; recording a new value at
    /// an existing timestamp overwrites it.
    pub fn record(&mut self, at: SimTime, value: f64) {
        debug_assert!(value.is_finite(), "non-finite sample {value}");
        if let Some(last) = self.points.last_mut() {
            debug_assert!(at >= last.0, "series timestamps must be monotone");
            if last.0 == at {
                last.1 = value;
                return;
            }
        }
        self.points.push((at, value));
    }

    /// Raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value holding at instant `t` (the last sample at or before `t`),
    /// or `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|p| p.0.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Time-weighted mean over `[start, end)`. Returns `None` for an empty
    /// window or a series with no samples before `end`.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start || self.points.is_empty() {
            return None;
        }
        let mut acc = 0.0f64;
        let mut covered = 0.0f64;
        let mut cursor = start;
        // walk segments overlapping the window
        for w in 0..self.points.len() {
            let (t0, v) = self.points[w];
            let t1 = self
                .points
                .get(w + 1)
                .map(|p| p.0)
                .unwrap_or(SimTime::FAR_FUTURE);
            if t1 <= cursor {
                continue;
            }
            if t0 >= end {
                break;
            }
            let seg_start = cursor.max(t0);
            let seg_end = end.min(t1);
            if seg_end > seg_start {
                let w = (seg_end - seg_start).as_secs_f64();
                acc += v * w;
                covered += w;
                cursor = seg_end;
            }
        }
        if covered == 0.0 {
            None
        } else {
            Some(acc / covered)
        }
    }

    /// Resample onto a fixed grid of period `step` covering `[start, end)`;
    /// instants before the first sample yield 0.0. Used to print the
    /// paper's per-second utilisation curves.
    pub fn resample(&self, start: SimTime, end: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "zero resample step");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += step;
        }
        out
    }

    /// Final recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }
}

/// For each grid instant, the standard deviation of the values held by
/// `series` at that instant (missing values count as 0.0 — a node that has
/// not reported yet is idle). This is exactly the Fig-9 computation: load
/// balance measured as the spread of per-node utilisation.
pub fn stddev_across(
    series: &[&TimeSeries],
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> Vec<(SimTime, f64)> {
    assert!(!step.is_zero());
    let mut out = Vec::new();
    if series.is_empty() {
        return out;
    }
    let mut t = start;
    while t < end {
        let vals: Vec<f64> = series
            .iter()
            .map(|s| s.value_at(t).unwrap_or(0.0))
            .collect();
        out.push((t, crate::stats::stddev(&vals)));
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(pairs: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (t, v) in pairs {
            s.record(SimTime::from_secs_f64(*t), *v);
        }
        s
    }

    #[test]
    fn value_at_interpolates_stepwise() {
        let s = ts(&[(1.0, 10.0), (3.0, 20.0)]);
        assert_eq!(s.value_at(SimTime::from_secs_f64(0.5)), None);
        assert_eq!(s.value_at(SimTime::from_secs_f64(1.0)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_secs_f64(2.9)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_secs_f64(3.0)), Some(20.0));
        assert_eq!(s.value_at(SimTime::from_secs_f64(99.0)), Some(20.0));
    }

    #[test]
    fn record_overwrites_same_instant() {
        let mut s = TimeSeries::new();
        s.record(SimTime(5), 1.0);
        s.record(SimTime(5), 2.0);
        assert_eq!(s.points().len(), 1);
        assert_eq!(s.value_at(SimTime(5)), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_simple() {
        // 10 for 2s, then 20 for 2s => mean 15 over [0,4) if started at 0
        let s = ts(&[(0.0, 10.0), (2.0, 20.0)]);
        let m = s
            .time_weighted_mean(SimTime::ZERO, SimTime::from_secs_f64(4.0))
            .unwrap();
        assert!((m - 15.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_partial_window() {
        let s = ts(&[(0.0, 10.0), (2.0, 20.0)]);
        // window [1,3): 1s at 10, 1s at 20
        let m = s
            .time_weighted_mean(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0))
            .unwrap();
        assert!((m - 15.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_empty_cases() {
        let s = TimeSeries::new();
        assert_eq!(s.time_weighted_mean(SimTime::ZERO, SimTime(10)), None);
        let s = ts(&[(5.0, 1.0)]);
        assert_eq!(
            s.time_weighted_mean(SimTime::ZERO, SimTime::from_secs_f64(2.0)),
            None
        );
    }

    #[test]
    fn resample_grid() {
        let s = ts(&[(1.0, 10.0)]);
        let grid = s.resample(
            SimTime::ZERO,
            SimTime::from_secs_f64(3.0),
            SimDuration::from_secs(1),
        );
        let vals: Vec<f64> = grid.iter().map(|p| p.1).collect();
        assert_eq!(vals, vec![0.0, 10.0, 10.0]);
    }

    #[test]
    fn stddev_across_series() {
        let a = ts(&[(0.0, 10.0)]);
        let b = ts(&[(0.0, 20.0)]);
        let out = stddev_across(
            &[&a, &b],
            SimTime::ZERO,
            SimTime::from_secs_f64(2.0),
            SimDuration::from_secs(1),
        );
        assert_eq!(out.len(), 2);
        for (_, sd) in out {
            assert!((sd - 5.0).abs() < 1e-9);
        }
    }
}
