//! # rupam-simcore
//!
//! Deterministic discrete-event simulation kernel shared by every other
//! crate in the RUPAM reproduction workspace.
//!
//! The kernel deliberately contains no cluster or Spark knowledge; it only
//! provides the primitives a reproducible simulation needs:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time,
//!   totally ordered and overflow-checked.
//! * [`calendar::Calendar`] — an event calendar with deterministic tie
//!   breaking (FIFO among events scheduled for the same instant).
//! * [`source::EventSource`] — the time-source abstraction over the
//!   calendar's contract, with [`source::WallClockSource`] as the live
//!   (wall-clock, channel-backed) implementation and a replay-oracle
//!   guarantee tying the two together.
//! * [`rng::RngFactory`] — seed-derived independent RNG streams, so adding
//!   a random draw in one component never perturbs another component's
//!   stream.
//! * [`series::TimeSeries`] and [`stats`] — weighted time-series recording
//!   and the summary statistics (mean, standard deviation, confidence
//!   intervals, percentiles) used by the paper's evaluation.

#![warn(missing_docs)]

pub mod calendar;
pub mod intern;
pub mod rng;
pub mod series;
pub mod source;
pub mod stats;
pub mod time;
pub mod units;

pub use calendar::Calendar;
pub use intern::Sym;
pub use rng::RngFactory;
pub use series::TimeSeries;
pub use source::{EventSource, WallClockSource};
pub use time::{SimDuration, SimTime};
pub use units::{ByteSize, GIB, KIB, MIB, TIB};

/// Declare a `usize`-backed index newtype with `Display` and arithmetic-free
/// semantics. Used for node / task / stage / … identifiers across the
/// workspace so that mixing up id spaces is a type error.
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub usize);

        impl $name {
            /// Raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }
    };
}
