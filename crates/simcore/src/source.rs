//! Time-source abstraction: where events come from and when they fire.
//!
//! The discrete-event [`Calendar`] hard-wires the engine to virtual
//! time: `pop` teleports the clock to the next scheduled entry. A live
//! scheduler cannot teleport — external inputs (worker heartbeats, job
//! submissions, task completions) arrive whenever they arrive, and
//! timeouts fire when the wall clock reaches them. [`EventSource`]
//! extracts the calendar's "what fires next and when" contract into a
//! trait so the same engine code runs against either:
//!
//! * [`Calendar`] — the deterministic implementation (sim mode, and the
//!   replay oracle for serve mode);
//! * [`WallClockSource`] — a wall-clock implementation that blocks on a
//!   bounded MPSC channel of external inputs and keeps internal timers
//!   in a deadline wheel, merging both into one totally-ordered stream
//!   of `(SimTime, E)` pops.
//!
//! ## The replay-oracle guarantee
//!
//! [`WallClockSource`] stamps every external input with a *monotone*
//! microsecond timestamp and records `(stamp, event)` into an input
//! log. The pop order it produces is exactly the order a [`Calendar`]
//! would produce if those externals were pre-scheduled at their stamps
//! *before* the run begins (so they carry lower insertion sequence
//! numbers than any timer the engine schedules while running):
//!
//! * pops are sorted by timestamp (stamps and timer deadlines share one
//!   µs clock);
//! * an external input *wins ties* against a timer at the same instant —
//!   which is precisely the calendar's FIFO rule when the external was
//!   inserted first;
//! * externals never reorder among themselves (FIFO arrival order, and
//!   stamps are clamped monotone), matching calendar FIFO tie-breaking.
//!
//! Replaying the log through a [`Calendar`]-driven copy of the same
//! engine therefore reproduces the identical event sequence, hence
//! identical decisions, hence byte-identical decision-trace digests.
//! [`Sequencer`] is the pure (thread-free) ordering core that enforces
//! these rules; the property tests below check them against the
//! calendar oracle for arbitrary interleavings.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::time::{Duration, Instant};

use crate::calendar::Calendar;
use crate::time::SimTime;

/// The engine's contract with time: schedule future events, learn the
/// current instant, and pop the next event to handle.
///
/// Implementations differ in *where events come from* — a deterministic
/// calendar pops whatever was scheduled, a wall-clock source also merges
/// in external inputs arriving on a channel — but all present the same
/// totally-ordered `(SimTime, E)` stream.
pub trait EventSource<E> {
    /// The current instant: the timestamp of the last popped event.
    fn now(&self) -> SimTime;

    /// Schedule an internal timer event at absolute time `at` (clamped
    /// to `now` if already past).
    fn schedule(&mut self, at: SimTime, event: E);

    /// Timestamp of the next event *already known* to this source, if
    /// any. For a calendar this is exhaustive; a wall-clock source can
    /// only report timers and externals that have already arrived.
    fn peek_time(&self) -> Option<SimTime>;

    /// Pop the next event, advancing `now` to its timestamp. A
    /// wall-clock source blocks until an event is due or an external
    /// input arrives; `None` means the source is exhausted (calendar
    /// empty, or channel disconnected with nothing staged).
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Number of events already known to this source.
    fn len(&self) -> usize;

    /// True iff no events are currently known.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Forwarding impl so a source can be lent to a driver that takes it
/// generically while the caller keeps ownership (e.g. to read the input
/// log back out after the run).
impl<E, S: EventSource<E>> EventSource<E> for &mut S {
    fn now(&self) -> SimTime {
        (**self).now()
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        (**self).schedule(at, event);
    }

    fn peek_time(&self) -> Option<SimTime> {
        (**self).peek_time()
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        (**self).pop()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
}

impl<E> EventSource<E> for Calendar<E> {
    fn now(&self) -> SimTime {
        Calendar::now(self)
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        Calendar::schedule(self, at, event);
    }

    fn peek_time(&self) -> Option<SimTime> {
        Calendar::peek_time(self)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        Calendar::pop(self)
    }

    fn len(&self) -> usize {
        Calendar::len(self)
    }

    fn is_empty(&self) -> bool {
        Calendar::is_empty(self)
    }
}

/// The pure ordering core of [`WallClockSource`]: merges stamped
/// external inputs (FIFO) with internal timer deadlines (a [`Calendar`]
/// acting as the deadline wheel) into one calendar-equivalent stream.
///
/// Thread-free and clock-free: the caller feeds it the wall reading, so
/// the merge rules can be property-tested deterministically.
pub struct Sequencer<E> {
    /// Internal timers keyed by absolute deadline.
    timers: Calendar<E>,
    /// Stamped external inputs in arrival order. Stamps are monotone
    /// non-decreasing by construction.
    staged: VecDeque<(SimTime, E)>,
    now: SimTime,
}

impl<E> Default for Sequencer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sequencer<E> {
    /// An empty sequencer positioned at t = 0.
    pub fn new() -> Self {
        Sequencer {
            timers: Calendar::new(),
            staged: VecDeque::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current instant (timestamp of the last pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an internal timer at `at` (clamped to `now`). Returns
    /// the effective deadline after clamping.
    pub fn schedule(&mut self, at: SimTime, event: E) -> SimTime {
        let at = at.max(self.now);
        self.timers.schedule(at, event);
        at
    }

    /// Stage one external input observed at wall reading `wall`. The
    /// stamp is clamped to `max(wall, now)` so stamps stay monotone even
    /// if a timer pop already advanced `now` past the arrival instant.
    /// Returns the stamp (recorded into the input log by the caller).
    pub fn stage(&mut self, wall: SimTime, event: E) -> SimTime {
        let stamp = wall
            .max(self.now)
            .max(self.staged.back().map(|(t, _)| *t).unwrap_or(SimTime::ZERO));
        self.staged.push_back((stamp, event));
        stamp
    }

    /// Pop the next event that is ready at wall reading `wall`, if any.
    ///
    /// Merge rule (the calendar-equivalence invariant): when both an
    /// external and a timer are ready, the timer goes first only if its
    /// deadline is *strictly* earlier than the external's stamp —
    /// externals win ties, matching a calendar where externals were
    /// pre-scheduled (inserted first).
    pub fn pop_ready(&mut self, wall: SimTime) -> Option<(SimTime, E)> {
        match (
            self.staged.front().map(|(t, _)| *t),
            self.timers.peek_time(),
        ) {
            (Some(stamp), Some(deadline)) if deadline < stamp => self.pop_timer(),
            (Some(_), _) => {
                let (stamp, e) = self.staged.pop_front().expect("front was Some");
                debug_assert!(stamp >= self.now);
                self.now = stamp;
                Some((stamp, e))
            }
            (None, Some(deadline)) if deadline <= wall => self.pop_timer(),
            _ => None,
        }
    }

    /// Pop the next timer regardless of the wall reading (used to drain
    /// remaining deadlines after the input channel disconnects).
    pub fn pop_forced(&mut self) -> Option<(SimTime, E)> {
        if let Some((stamp, _)) = self.staged.front() {
            if self.timers.peek_time().map(|d| d < *stamp).unwrap_or(false) {
                return self.pop_timer();
            }
            let (stamp, e) = self.staged.pop_front().expect("front was Some");
            self.now = stamp;
            return Some((stamp, e));
        }
        self.pop_timer()
    }

    fn pop_timer(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.timers.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        Some((t, e))
    }

    /// Earliest timer deadline (what to sleep towards when nothing is
    /// staged).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.peek_time()
    }

    /// Timestamp of the next known event: staged front or timer head,
    /// whichever the merge rule would pop first.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (
            self.staged.front().map(|(t, _)| *t),
            self.timers.peek_time(),
        ) {
            (Some(s), Some(d)) => Some(s.min(d)),
            (Some(s), None) => Some(s),
            (None, d) => d,
        }
    }

    /// Number of known events (staged externals + pending timers).
    pub fn len(&self) -> usize {
        self.staged.len() + self.timers.len()
    }

    /// True when nothing is staged and no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A wall-clock, channel-backed [`EventSource`].
///
/// External inputs arrive on a bounded MPSC channel (producers block
/// when the engine falls behind — natural backpressure); internal
/// timers live in a deadline wheel. `pop` blocks until the earlier of
/// the two is due. Every external is stamped with a monotone µs
/// timestamp relative to the source's epoch and appended to an input
/// log, which [`Self::take_log`] surfaces for deterministic replay
/// through a [`Calendar`] (see the module docs for why the orders
/// match).
pub struct WallClockSource<E: Clone> {
    seq: Sequencer<E>,
    rx: Receiver<E>,
    epoch: Instant,
    disconnected: bool,
    log: Vec<(SimTime, E)>,
}

impl<E: Clone> WallClockSource<E> {
    /// Create a source with a bounded input channel of `capacity`
    /// entries; returns the producer handle alongside.
    pub fn new(capacity: usize) -> (SyncSender<E>, Self) {
        let (tx, rx) = sync_channel(capacity);
        (
            tx,
            WallClockSource {
                seq: Sequencer::new(),
                rx,
                epoch: Instant::now(),
                disconnected: false,
                log: Vec::new(),
            },
        )
    }

    /// Microseconds elapsed since the source was created.
    pub fn wall(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// The recorded input log: every external input with its stamp, in
    /// pop-consistent order. Replay by pre-scheduling these into a
    /// [`Calendar`] before running the engine copy.
    pub fn take_log(&mut self) -> Vec<(SimTime, E)> {
        std::mem::take(&mut self.log)
    }

    fn drain_channel(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok(e) => self.stage(e),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
    }

    fn stage(&mut self, event: E) {
        let wall = self.wall();
        let stamp = self.seq.stage(wall, event.clone());
        self.log.push((stamp, event));
    }
}

impl<E: Clone> EventSource<E> for WallClockSource<E> {
    fn now(&self) -> SimTime {
        self.seq.now()
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        self.seq.schedule(at, event);
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.seq.peek_time()
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.drain_channel();
            if let Some(hit) = self.seq.pop_ready(self.wall()) {
                return Some(hit);
            }
            if self.disconnected {
                // producers are gone: fast-forward the remaining timers
                // so the engine can drain deterministically
                return self.seq.pop_forced();
            }
            match self.seq.next_deadline() {
                Some(deadline) => {
                    let wall = self.wall();
                    let wait = Duration::from_micros(deadline.0.saturating_sub(wall.0));
                    match self.rx.recv_timeout(wait) {
                        Ok(e) => self.stage(e),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => self.disconnected = true,
                    }
                }
                None => match self.rx.recv() {
                    Ok(e) => self.stage(e),
                    Err(_) => self.disconnected = true,
                },
            }
        }
    }

    fn len(&self) -> usize {
        self.seq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn calendar_implements_event_source() {
        fn drive<S: EventSource<u32>>(s: &mut S) -> Vec<(SimTime, u32)> {
            s.schedule(SimTime(20), 2);
            s.schedule(SimTime(10), 1);
            std::iter::from_fn(|| s.pop()).collect()
        }
        let mut cal = Calendar::new();
        let popped = drive(&mut cal);
        assert_eq!(popped, vec![(SimTime(10), 1), (SimTime(20), 2)]);
        assert_eq!(EventSource::now(&cal), SimTime(20));
    }

    #[test]
    fn sequencer_external_wins_tie_against_timer() {
        let mut s = Sequencer::new();
        s.schedule(SimTime(50), "timer");
        s.stage(SimTime(50), "ext");
        assert_eq!(s.pop_ready(SimTime(50)), Some((SimTime(50), "ext")));
        assert_eq!(s.pop_ready(SimTime(50)), Some((SimTime(50), "timer")));
    }

    #[test]
    fn sequencer_earlier_timer_precedes_later_external() {
        let mut s = Sequencer::new();
        s.schedule(SimTime(10), "timer");
        s.stage(SimTime(30), "ext");
        assert_eq!(s.pop_ready(SimTime(30)), Some((SimTime(10), "timer")));
        assert_eq!(s.pop_ready(SimTime(30)), Some((SimTime(30), "ext")));
    }

    #[test]
    fn sequencer_timer_waits_for_wall() {
        let mut s = Sequencer::new();
        s.schedule(SimTime(100), "timer");
        assert_eq!(s.pop_ready(SimTime(99)), None);
        assert_eq!(s.next_deadline(), Some(SimTime(100)));
        assert_eq!(s.pop_ready(SimTime(100)), Some((SimTime(100), "timer")));
    }

    #[test]
    fn sequencer_stamps_are_monotone_even_when_wall_regresses() {
        let mut s = Sequencer::new();
        let a = s.stage(SimTime(40), "a");
        let b = s.stage(SimTime(20), "b"); // wall reading regressed
        assert_eq!(a, SimTime(40));
        assert_eq!(b, SimTime(40), "stamp clamps monotone");
        s.pop_ready(SimTime(40));
        let c = s.stage(SimTime(10), "c");
        assert_eq!(c, SimTime(40), "stamp clamps to now after pops");
    }

    #[test]
    fn wall_source_delivers_external_inputs_and_timers() {
        let (tx, mut src) = WallClockSource::new(16);
        src.schedule(SimTime(1_000), "timer"); // 1ms deadline
        tx.send("ext").unwrap();
        let (t1, e1) = src.pop().unwrap();
        let (t2, e2) = src.pop().unwrap();
        // the external arrives ~immediately, well before the 1ms timer
        assert_eq!((e1, e2), ("ext", "timer"));
        assert!(t1 <= t2);
        assert_eq!(t2, SimTime(1_000));
        let log = src.take_log();
        assert_eq!(log, vec![(t1, "ext")]);
    }

    #[test]
    fn wall_source_drains_timers_after_disconnect() {
        let (tx, mut src) = WallClockSource::new(4);
        src.schedule(SimTime(5_000_000_000), "far-future");
        drop(tx);
        assert_eq!(src.pop(), Some((SimTime(5_000_000_000), "far-future")));
        assert_eq!(src.pop(), None);
    }

    /// One scripted step against the sequencer-under-test.
    #[derive(Clone, Debug)]
    enum Op {
        /// Advance the wall reading by this many µs, popping everything
        /// that becomes ready.
        Advance(u64),
        /// External input arrives now.
        Stage,
        /// Engine schedules a timer `dt` µs ahead of the wall reading.
        Schedule(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u64..3, 0u64..2_000).prop_map(|(kind, dt)| match kind {
            0 => Op::Advance(dt),
            1 => Op::Stage,
            _ => Op::Schedule(dt),
        })
    }

    proptest! {
        /// Causality: any interleaving of external inputs and timer
        /// schedules pops in an order the deterministic calendar could
        /// also produce — pre-schedule the externals at their stamps
        /// (lower insertion seq), replay the timer schedules, pop
        /// everything: the two orders must be identical, and timestamps
        /// must be monotone.
        #[test]
        fn prop_wall_order_matches_calendar_order(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut seq = Sequencer::new();
            let mut wall = SimTime::ZERO;
            let mut popped: Vec<(SimTime, usize)> = Vec::new();
            let mut externals: Vec<(SimTime, usize)> = Vec::new(); // (stamp, tag)
            let mut timers: Vec<(SimTime, usize)> = Vec::new(); // (effective deadline, tag)
            let mut tag = 0usize;
            for op in &ops {
                match op {
                    Op::Advance(dt) => {
                        wall += SimDuration(*dt);
                        while let Some(hit) = seq.pop_ready(wall) {
                            popped.push(hit);
                        }
                    }
                    Op::Stage => {
                        let stamp = seq.stage(wall, tag);
                        externals.push((stamp, tag));
                        tag += 1;
                    }
                    Op::Schedule(dt) => {
                        let at = seq.schedule(wall + SimDuration(*dt), tag);
                        timers.push((at, tag));
                        tag += 1;
                    }
                }
            }
            // final drain at wall = ∞
            while let Some(hit) = seq.pop_ready(SimTime(u64::MAX)) {
                popped.push(hit);
            }

            // timestamps monotone, and every event pops at its stamp
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "non-monotone pops: {:?}", popped);
            }

            // calendar oracle: externals pre-scheduled first (at their
            // stamps, arrival order), then the timers in schedule order
            let mut oracle = Calendar::new();
            for &(stamp, t) in &externals {
                oracle.schedule(stamp, t);
            }
            for &(at, t) in &timers {
                oracle.schedule(at, t);
            }
            let expect: Vec<(SimTime, usize)> = std::iter::from_fn(|| oracle.pop()).collect();
            prop_assert_eq!(popped, expect, "wall order diverged from calendar order");
        }
    }
}
