//! Beyond-paper: scheduler resilience under injected faults.
//!
//! The paper only ever evaluates a healthy Hydra — but heterogeneity
//! awareness matters most when the cluster degrades: RUPAM evicts a
//! dead node from all five resource rankings, releases best-executor
//! locks pointing at it, and relocates work off suspect nodes, while
//! locality-only baselines keep steering tasks at the hole. This module
//! replays the same workload under canned chaos scripts
//! ([`scenarios`]) for RUPAM, stock Spark and the FIFO floor, and
//! reports makespan and mean JCT per scenario.
//!
//! [`rupam_resilience`] distils the same runs into dimensionless
//! healthy/degraded makespan ratios, which `perf::run` folds into the
//! `BENCH_scheduler.json` regression gate (`degraded_resilience_*`
//! keys) — simulated time, so the ratios are deterministic and
//! machine-independent.

use std::fmt::Write as _;

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_exec::SimConfig;
use rupam_faults::FaultScript;
use rupam_workloads::Workload;

use crate::harness::{repeat_cfg, Repeated, Sched};

/// One canned chaos scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short label used in tables and gate keys (`crash1`, `flaky2`).
    pub label: &'static str,
    /// Human description for the report.
    pub what: &'static str,
    /// The chaos script.
    pub script: FaultScript,
}

/// The canned scenarios: a healthy control, the ISSUE's 1-node-crash,
/// and its 2-node-flaky (with a heartbeat dropout layered on the first
/// flaky node). Node indices assume a ≥ 4-node cluster.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "healthy",
            what: "no faults (control)",
            script: FaultScript::empty(),
        },
        Scenario {
            label: "crash1",
            what: "node 2 crashes at t=5s, restarts 30s later",
            script: FaultScript::one_node_crash(NodeId(2), 5.0, Some(30.0)),
        },
        Scenario {
            label: "flaky2",
            what: "nodes 1+3 flaky-OOM (p=0.25/check) for 20s from t=3s, dropout on node 1",
            script: FaultScript::two_node_flaky(NodeId(1), NodeId(3), 3.0, 20.0, 0.25),
        },
    ]
}

/// One (scheduler, scenario) cell of the experiment.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Scenario label.
    pub scenario: String,
    /// Mean makespan, seconds.
    pub makespan_secs: f64,
    /// 95 % confidence half-width of the makespan mean.
    pub ci95: f64,
    /// Mean job completion time across all completed jobs and runs,
    /// seconds (0.0 if nothing completed).
    pub jct_secs: f64,
    /// Runs (out of the seeds given) that completed all work.
    pub completed: usize,
    /// Seeds attempted.
    pub runs: usize,
}

/// One scheduler's row across all scenarios.
#[derive(Clone, Debug)]
pub struct DegradedRow {
    /// Scheduler label (`RUPAM`, `Spark`, `FIFO`).
    pub sched: String,
    /// One cell per scenario, in [`scenarios`] order.
    pub cells: Vec<Cell>,
}

fn mean_jct_secs(rep: &Repeated) -> f64 {
    let jcts: Vec<f64> = rep
        .reports
        .iter()
        .flat_map(|r| r.jobs.iter())
        .filter_map(|j| j.jct())
        .map(|d| d.as_secs_f64())
        .collect();
    rupam_simcore::stats::mean(&jcts)
}

fn run_cell(
    cluster: &ClusterSpec,
    w: Workload,
    sched: &Sched,
    seeds: &[u64],
    scenario: &Scenario,
) -> Cell {
    let config = SimConfig::with_faults(scenario.script.clone());
    let rep = repeat_cfg(cluster, w, sched, seeds, &config);
    Cell {
        scenario: scenario.label.to_string(),
        makespan_secs: rep.mean(),
        ci95: rep.ci95(),
        jct_secs: mean_jct_secs(&rep),
        completed: rep.reports.iter().filter(|r| r.completed).count(),
        runs: seeds.len(),
    }
}

/// Run the full experiment: each scheduler × each scenario × each seed.
pub fn run(cluster: &ClusterSpec, w: Workload, seeds: &[u64]) -> Vec<DegradedRow> {
    let scheds = [Sched::Rupam, Sched::Spark, Sched::Fifo];
    let scenarios = scenarios();
    scheds
        .iter()
        .map(|sched| DegradedRow {
            sched: sched.label(),
            cells: scenarios
                .iter()
                .map(|sc| run_cell(cluster, w, sched, seeds, sc))
                .collect(),
        })
        .collect()
}

/// RUPAM's resilience ratio per degraded scenario: healthy mean
/// makespan over degraded mean makespan (1.0 = no slowdown at all;
/// 0.5 = the faults doubled the makespan). Returns
/// `(scenario label, ratio)` for every non-control scenario, skipping
/// any whose runs produced no makespans.
pub fn rupam_resilience(cluster: &ClusterSpec, w: Workload, seeds: &[u64]) -> Vec<(String, f64)> {
    let scenarios = scenarios();
    let cells: Vec<Cell> = scenarios
        .iter()
        .map(|sc| run_cell(cluster, w, &Sched::Rupam, seeds, sc))
        .collect();
    let Some(healthy) = cells
        .iter()
        .find(|c| c.scenario == "healthy")
        .map(|c| c.makespan_secs)
    else {
        return Vec::new();
    };
    cells
        .iter()
        .filter(|c| c.scenario != "healthy" && c.makespan_secs > 0.0)
        .map(|c| (c.scenario.clone(), healthy / c.makespan_secs))
        .collect()
}

/// Render the experiment as a markdown table (one row per scheduler ×
/// scenario) plus per-scenario slowdown ratios vs each scheduler's own
/// healthy control.
pub fn render(rows: &[DegradedRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| scheduler | scenario | makespan (s) | ±95% | mean JCT (s) | slowdown | completed |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for row in rows {
        let healthy = row
            .cells
            .iter()
            .find(|c| c.scenario == "healthy")
            .map(|c| c.makespan_secs)
            .unwrap_or(0.0);
        for c in &row.cells {
            let slowdown = if healthy > 0.0 {
                format!("{:.2}x", c.makespan_secs / healthy)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} | {:.1} | {:.1} | {} | {}/{} |",
                row.sched,
                c.scenario,
                c.makespan_secs,
                c.ci95,
                c.jct_secs,
                slowdown,
                c.completed,
                c.runs
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_unique_labels_and_one_control() {
        let sc = scenarios();
        let labels: Vec<_> = sc.iter().map(|s| s.label).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(sc.iter().filter(|s| s.script.is_empty()).count(), 1);
    }

    #[test]
    fn degraded_runs_complete_and_slow_down() {
        let cluster = ClusterSpec::hydra();
        let rows = run(&cluster, Workload::TeraSort, &[42]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.cells.len(), 3);
            for c in &row.cells {
                assert_eq!(
                    c.completed, c.runs,
                    "{} {} lost work",
                    row.sched, c.scenario
                );
                assert!(c.makespan_secs > 0.0);
            }
        }
        let table = render(&rows);
        assert!(table.contains("crash1") && table.contains("RUPAM"));
    }

    #[test]
    fn resilience_ratios_are_deterministic_and_bounded() {
        let cluster = ClusterSpec::hydra();
        let a = rupam_resilience(&cluster, Workload::TeraSort, &[42]);
        let b = rupam_resilience(&cluster, Workload::TeraSort, &[42]);
        assert_eq!(a, b, "simulated ratios must be reproducible");
        assert_eq!(a.len(), 2);
        for (label, ratio) in &a {
            assert!(
                *ratio > 0.0 && *ratio <= 1.0 + 1e-9,
                "{label}: faults cannot speed a run up ({ratio})"
            );
        }
    }
}
