//! # rupam-bench
//!
//! The experiment harness: everything needed to regenerate every table
//! and figure of the paper's evaluation (§II-B and §IV), shared by the
//! Criterion benches (`benches/`) and the `experiments` binary.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`harness`] | run / repeat infrastructure (5 seeds ≈ the paper's 5 runs) |
//! | [`motivation`] | Fig. 2 (MatMul utilisation) and Fig. 3 (PageRank skew) |
//! | [`hardware`] | Table II (Hydra specs) and Table IV (microbenchmarks) |
//! | [`overall`] | Fig. 5 (overall) and Fig. 6 (LR iteration sweep) |
//! | [`locality`] | Table V (locality census) |
//! | [`breakdown`] | Fig. 7 (per-category breakdown) |
//! | [`utilization`] | Fig. 8 (average utilisation) and Fig. 9 (balance) |
//! | [`ablation`] | design-choice ablations (DESIGN.md §5, last row) |
//! | [`perf`] | wall-clock scheduler microbenchmarks (`BENCH_scheduler.json`) |
//! | [`digestgate`] | cross-version trace-digest equivalence gate (`tests/golden_trace_digests.txt`) |
//! | [`sensitivity`] | beyond-paper: RUPAM gain vs degree of cluster heterogeneity |
//! | [`multitenant`] | beyond-paper: online multi-tenant stream, JCTs, warm-vs-cold DB |
//! | [`degraded`] | beyond-paper: resilience under injected faults (chaos scripts) |
//! | [`serve`] | beyond-paper: sustained-load live service (`rupam-serve`) with replay-oracle certification |

#![warn(missing_docs)]

pub mod ablation;
pub mod breakdown;
pub mod degraded;
pub mod digestgate;
pub mod fairness;
pub mod hardware;
pub mod harness;
pub mod locality;
pub mod motivation;
pub mod multitenant;
pub mod overall;
pub mod perf;
pub mod sensitivity;
pub mod serve;
pub mod spot;
pub mod utilization;

pub use harness::{
    placement_census, run_app, run_app_cfg, run_app_observed, run_app_observed_cfg, run_stream,
    run_stream_cfg, run_stream_observed, run_stream_observed_cfg, run_workload, run_workload_cfg,
    run_workload_observed, run_workload_observed_cfg, Repeated, Sched, SEEDS,
};
