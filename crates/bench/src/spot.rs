//! Beyond-paper: the cost-vs-JCT Pareto frontier under an elastic spot
//! tier.
//!
//! The paper's Hydra is a fixed fleet; real deployments rent churning
//! capacity. This experiment puts the four weakest hydra nodes in a
//! cheap spot pool whose price walks a seeded OU process, and runs a
//! contended multi-tenant burst under every [`SpotPolicy`] — the
//! fixed-fleet control (`on-demand-only`), unconditional spot use
//! (`greedy`) and price-capped spot use (`on-demand-fallback`) — each
//! with the dispatcher both **risk-aware** (the default
//! `spot_risk_penalty`, which discounts a node's rank score by its
//! pool's current per-check preemption probability) and **risk-blind**
//! (`spot_risk_penalty = 0.0`, the ablation: spot nodes rank purely on
//! capability).
//!
//! Two dimensionless ratios feed the `BENCH_scheduler.json` regression
//! gate:
//!
//! * [`spot_resilience`] — fixed-fleet makespan over greedy-churn
//!   makespan: elastic capacity must keep paying for itself despite
//!   preemptions (≥ 1 means the spot tier still speeds the burst up);
//! * [`spot_cost_ratio`] — risk-blind dollars over risk-aware dollars
//!   under the greedy policy: pricing preemption risk into placement
//!   must not cost more than ignoring it.
//!
//! Both are simulated-time ratios — deterministic and
//! machine-independent, like the `degraded_resilience_*` rows.

use std::fmt::Write as _;

use rupam::config::RupamConfig;
use rupam_cluster::ClusterSpec;
use rupam_dag::MergedStream;
use rupam_elastic::{ElasticConfig, SpotPolicy};
use rupam_exec::SimConfig;
use rupam_simcore::stats::mean;
use rupam_workloads::Workload;

use crate::harness::{run_stream_cfg, Sched};
use crate::multitenant::build_stream;

/// All procurement policies, control first.
pub const POLICIES: [SpotPolicy; 3] = [
    SpotPolicy::OnDemandOnly,
    SpotPolicy::Greedy,
    SpotPolicy::OnDemandFallback,
];

/// The experiment's elastic script: the four weakest hydra nodes in one
/// volatile spot pool, scaling up on any backlog and churning hard
/// enough that placement choices are actually exposed to preemptions.
pub fn spot_config(policy: SpotPolicy) -> SimConfig {
    let mut elastic = ElasticConfig::spot_tail(12, 4, policy);
    elastic.check_secs = 2.0;
    elastic.scale_up_backlog = 0.0;
    elastic.scale_down_idle_secs = 10.0;
    elastic.pools[0].volatility = 0.08;
    elastic.pools[0].preempt_base = 0.02;
    elastic.pools[0].preempt_slope = 0.5;
    SimConfig::with_elastic(elastic)
}

/// The contended burst: six tenants arriving ~2 s apart, enough backlog
/// that the controller provisions the whole spot tail.
pub fn burst(cluster: &ClusterSpec, seed: u64) -> MergedStream {
    build_stream(
        cluster,
        &[
            Workload::TeraSort,
            Workload::Sql,
            Workload::PageRank,
            Workload::KMeans,
            Workload::TeraSort,
            Workload::TriangleCount,
        ],
        2.0,
        seed,
    )
}

/// The risk-blind ablation: RUPAM with the spot-risk discount disabled.
pub fn risk_blind() -> Sched {
    Sched::RupamWith(RupamConfig {
        spot_risk_penalty: 0.0,
        ..RupamConfig::default()
    })
}

/// One (policy, dispatcher-variant) point of the Pareto frontier,
/// averaged over the seeds.
#[derive(Clone, Debug)]
pub struct SpotCell {
    /// Procurement policy code (`on-demand-only`, `greedy`, …).
    pub policy: &'static str,
    /// `risk-aware` or `risk-blind`.
    pub variant: &'static str,
    /// Mean makespan, seconds.
    pub makespan_secs: f64,
    /// Mean job completion time across all completed jobs and runs,
    /// seconds.
    pub jct_secs: f64,
    /// Mean total dollars per run (on-demand + spot, integrated against
    /// the actual price path).
    pub cost: f64,
    /// Mean spot dollars per run.
    pub spot_cost: f64,
    /// Preemption drains summed over all runs.
    pub preemptions: usize,
    /// Spot provisions summed over all runs.
    pub provisions: usize,
    /// Runs (out of the seeds given) that completed all work.
    pub completed: usize,
    /// Seeds attempted.
    pub runs: usize,
}

fn run_cell(
    cluster: &ClusterSpec,
    sched: &Sched,
    variant: &'static str,
    policy: SpotPolicy,
    seeds: &[u64],
) -> SpotCell {
    let config = spot_config(policy);
    let reports: Vec<_> = seeds
        .iter()
        .map(|&s| run_stream_cfg(cluster, &burst(cluster, s), sched, s, &config))
        .collect();
    let makespans: Vec<f64> = reports.iter().map(|r| r.makespan.as_secs_f64()).collect();
    let jcts: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.jobs.iter())
        .filter_map(|j| j.jct())
        .map(|d| d.as_secs_f64())
        .collect();
    let costs: Vec<f64> = reports.iter().map(|r| r.cost.total_cost()).collect();
    let spot_costs: Vec<f64> = reports.iter().map(|r| r.cost.spot_cost).collect();
    SpotCell {
        policy: policy.code(),
        variant,
        makespan_secs: mean(&makespans),
        jct_secs: mean(&jcts),
        cost: mean(&costs),
        spot_cost: mean(&spot_costs),
        preemptions: reports.iter().map(|r| r.cost.preemptions).sum(),
        provisions: reports.iter().map(|r| r.cost.provisions).sum(),
        completed: reports.iter().filter(|r| r.completed).count(),
        runs: seeds.len(),
    }
}

/// Run the full Pareto grid: every policy × {risk-aware, risk-blind}.
pub fn run(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<SpotCell> {
    let variants = [(Sched::Rupam, "risk-aware"), (risk_blind(), "risk-blind")];
    POLICIES
        .iter()
        .flat_map(|&policy| {
            variants
                .iter()
                .map(move |(sched, variant)| run_cell(cluster, sched, variant, policy, seeds))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Fixed-fleet mean makespan over greedy-churn mean makespan, both
/// risk-aware. ≥ 1 means the spot tier speeds the contended burst up
/// even though it churns.
pub fn spot_resilience(cells: &[SpotCell]) -> Option<f64> {
    let pick = |policy: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.variant == "risk-aware")
            .map(|c| c.makespan_secs)
    };
    let (fixed, greedy) = (pick("on-demand-only")?, pick("greedy")?);
    (greedy > 0.0).then(|| fixed / greedy)
}

/// Risk-blind mean dollars over risk-aware mean dollars under the
/// greedy policy. ≥ 1 means pricing preemption risk into placement is
/// at worst cost-neutral.
pub fn spot_cost_ratio(cells: &[SpotCell]) -> Option<f64> {
    let pick = |variant: &str| {
        cells
            .iter()
            .find(|c| c.policy == "greedy" && c.variant == variant)
            .map(|c| c.cost)
    };
    let (blind, aware) = (pick("risk-blind")?, pick("risk-aware")?);
    (aware > 0.0).then(|| blind / aware)
}

/// The two gate ratios for `BENCH_scheduler.json`, computed from one
/// grid run.
pub fn spot_gate(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<(String, f64)> {
    let cells = run(cluster, seeds);
    let mut out = Vec::new();
    if let Some(r) = spot_resilience(&cells) {
        out.push(("resilience".to_string(), r));
    }
    if let Some(r) = spot_cost_ratio(&cells) {
        out.push(("cost_ratio".to_string(), r));
    }
    out
}

/// Render the grid as a markdown Pareto table.
pub fn render(cells: &[SpotCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| policy | dispatcher | makespan (s) | mean JCT (s) | cost ($) | spot ($) | provisions | preemptions | completed |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for c in cells {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} | {:.1} | {:.4} | {:.4} | {} | {} | {}/{} |",
            c.policy,
            c.variant,
            c.makespan_secs,
            c.jct_secs,
            c.cost,
            c.spot_cost,
            c.provisions,
            c.preemptions,
            c.completed,
            c.runs
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_policy_and_loses_nothing() {
        let cluster = ClusterSpec::hydra();
        let cells = run(&cluster, &[42]);
        assert_eq!(cells.len(), POLICIES.len() * 2);
        for c in &cells {
            assert_eq!(c.completed, c.runs, "{} {} lost work", c.policy, c.variant);
            assert!(c.makespan_secs > 0.0);
            assert!(c.cost > 0.0, "every run bills its on-demand fleet");
        }
        // the control never touches spot capacity
        for c in cells.iter().filter(|c| c.policy == "on-demand-only") {
            assert_eq!(c.provisions, 0);
            assert_eq!(c.preemptions, 0);
            assert_eq!(c.spot_cost, 0.0);
        }
        // the greedy tier actually churns
        let greedy: Vec<_> = cells.iter().filter(|c| c.policy == "greedy").collect();
        assert!(greedy.iter().all(|c| c.provisions > 0));
        let table = render(&cells);
        assert!(table.contains("greedy") && table.contains("risk-blind"));
    }

    #[test]
    fn gate_ratios_are_deterministic() {
        let cluster = ClusterSpec::hydra();
        let a = spot_gate(&cluster, &[42]);
        let b = spot_gate(&cluster, &[42]);
        assert_eq!(a, b, "simulated ratios must be reproducible");
        assert_eq!(a.len(), 2);
        for (label, ratio) in &a {
            assert!(ratio.is_finite() && *ratio > 0.0, "{label}: {ratio}");
        }
    }
}
