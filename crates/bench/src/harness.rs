//! Run infrastructure.
//!
//! The paper's protocol: "we run all workloads five times and clear
//! `DB_task_char` after each run, and record the average execution time
//! and 95 % confidence interval". One simulated run per seed plays the
//! role of one wall-clock repetition; a fresh scheduler per run plays
//! the cleared DB. Repetitions execute in parallel worker threads
//! (`std::thread::scope`) since each simulation is self-contained.

use rupam::{FifoScheduler, RupamConfig, RupamScheduler, SparkScheduler};
use rupam_cluster::ClusterSpec;
use rupam_dag::app::Application;
use rupam_dag::data::DataLayout;
use rupam_dag::MergedStream;
use rupam_exec::scheduler::Scheduler;
use rupam_exec::{
    simulate, simulate_observed, simulate_stream, simulate_stream_observed, SimConfig, SimInput,
    SimObservation, SimOptions, StreamInput,
};
use rupam_metrics::report::RunReport;
use rupam_simcore::{stats, RngFactory};
use rupam_workloads::Workload;

/// The five repetition seeds (≈ the paper's five runs).
pub const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

/// Which scheduler to run.
#[derive(Clone, Debug)]
pub enum Sched {
    /// Stock Spark 2.2 baseline.
    Spark,
    /// RUPAM with the paper's configuration.
    Rupam,
    /// RUPAM with a custom (ablation) configuration.
    RupamWith(RupamConfig),
    /// Locality-blind FIFO floor.
    Fifo,
}

impl Sched {
    /// Instantiate the scheduler.
    pub fn make(&self) -> Box<dyn Scheduler + Send> {
        match self {
            Sched::Spark => Box::new(SparkScheduler::with_defaults()),
            Sched::Rupam => Box::new(RupamScheduler::with_defaults()),
            Sched::RupamWith(cfg) => Box::new(RupamScheduler::new(cfg.clone())),
            Sched::Fifo => Box::new(FifoScheduler::new()),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Sched::Spark => "Spark".into(),
            Sched::Rupam => "RUPAM".into(),
            Sched::RupamWith(cfg) => {
                let s = RupamScheduler::new(cfg.clone());
                s.name().to_string()
            }
            Sched::Fifo => "FIFO".into(),
        }
    }
}

/// Run one pre-built application.
pub fn run_app(
    cluster: &ClusterSpec,
    app: &Application,
    layout: &DataLayout,
    sched: &Sched,
    seed: u64,
) -> RunReport {
    run_app_cfg(cluster, app, layout, sched, seed, &SimConfig::default())
}

/// Like [`run_app`], but with an explicit engine configuration (fault
/// scripts, admission-control knobs, …).
pub fn run_app_cfg(
    cluster: &ClusterSpec,
    app: &Application,
    layout: &DataLayout,
    sched: &Sched,
    seed: u64,
    config: &SimConfig,
) -> RunReport {
    let input = SimInput {
        cluster,
        app,
        layout,
        config,
        seed,
    };
    let mut scheduler = sched.make();
    simulate(&input, scheduler.as_mut())
}

/// Build (with the seed-derived generator) and run one suite workload.
pub fn run_workload(cluster: &ClusterSpec, w: Workload, sched: &Sched, seed: u64) -> RunReport {
    run_workload_cfg(cluster, w, sched, seed, &SimConfig::default())
}

/// Like [`run_workload`], but with an explicit engine configuration.
pub fn run_workload_cfg(
    cluster: &ClusterSpec,
    w: Workload,
    sched: &Sched,
    seed: u64,
    config: &SimConfig,
) -> RunReport {
    let (app, layout) = w.build(cluster, &RngFactory::new(seed));
    run_app_cfg(cluster, &app, &layout, sched, seed, config)
}

/// Like [`run_app`], but with decision tracing / invariant auditing.
pub fn run_app_observed(
    cluster: &ClusterSpec,
    app: &Application,
    layout: &DataLayout,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    run_app_observed_cfg(
        cluster,
        app,
        layout,
        sched,
        seed,
        opts,
        &SimConfig::default(),
    )
}

/// Like [`run_app_observed`], but with an explicit engine configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_app_observed_cfg(
    cluster: &ClusterSpec,
    app: &Application,
    layout: &DataLayout,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
    config: &SimConfig,
) -> (RunReport, SimObservation) {
    let input = SimInput {
        cluster,
        app,
        layout,
        config,
        seed,
    };
    let mut scheduler = sched.make();
    simulate_observed(&input, scheduler.as_mut(), opts)
}

/// Run a pre-merged multi-tenant stream under one long-lived scheduler.
pub fn run_stream(
    cluster: &ClusterSpec,
    stream: &MergedStream,
    sched: &Sched,
    seed: u64,
) -> RunReport {
    run_stream_cfg(cluster, stream, sched, seed, &SimConfig::default())
}

/// Like [`run_stream`], but with an explicit engine configuration.
pub fn run_stream_cfg(
    cluster: &ClusterSpec,
    stream: &MergedStream,
    sched: &Sched,
    seed: u64,
    config: &SimConfig,
) -> RunReport {
    let input = StreamInput {
        cluster,
        stream,
        config,
        seed,
    };
    let mut scheduler = sched.make();
    simulate_stream(&input, scheduler.as_mut())
}

/// Like [`run_stream`], but with decision tracing / invariant auditing.
pub fn run_stream_observed(
    cluster: &ClusterSpec,
    stream: &MergedStream,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    run_stream_observed_cfg(cluster, stream, sched, seed, opts, &SimConfig::default())
}

/// Like [`run_stream_observed`], but with an explicit engine
/// configuration.
pub fn run_stream_observed_cfg(
    cluster: &ClusterSpec,
    stream: &MergedStream,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
    config: &SimConfig,
) -> (RunReport, SimObservation) {
    let input = StreamInput {
        cluster,
        stream,
        config,
        seed,
    };
    let mut scheduler = sched.make();
    simulate_stream_observed(&input, scheduler.as_mut(), opts)
}

/// Like [`run_workload`], but with decision tracing / invariant auditing.
pub fn run_workload_observed(
    cluster: &ClusterSpec,
    w: Workload,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    run_workload_observed_cfg(cluster, w, sched, seed, opts, &SimConfig::default())
}

/// Like [`run_workload_observed`], but with an explicit engine
/// configuration.
pub fn run_workload_observed_cfg(
    cluster: &ClusterSpec,
    w: Workload,
    sched: &Sched,
    seed: u64,
    opts: &SimOptions,
    config: &SimConfig,
) -> (RunReport, SimObservation) {
    let (app, layout) = w.build(cluster, &RngFactory::new(seed));
    run_app_observed_cfg(cluster, &app, &layout, sched, seed, opts, config)
}

/// Summary of repeated runs.
pub struct Repeated {
    /// Makespans in seconds, one per seed.
    pub secs: Vec<f64>,
    /// Full report of each run (same order as the `seeds` argument given
    /// to [`repeat`]).
    pub reports: Vec<RunReport>,
}

impl Repeated {
    /// Mean makespan.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.secs)
    }

    /// 95 % confidence half-width of the mean.
    pub fn ci95(&self) -> f64 {
        stats::ci95_half_width(&self.secs)
    }

    /// The first run's report (used for per-task analyses, like the
    /// paper's single-run locality and breakdown tables), or `None` when
    /// [`repeat`] was given no seeds.
    pub fn first(&self) -> Option<&RunReport> {
        self.reports.first()
    }

    /// Total memory-related failures across the runs.
    pub fn memory_failures(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.oom_failures + r.executor_losses)
            .sum()
    }
}

/// Run a workload once per seed, in parallel threads.
pub fn repeat(cluster: &ClusterSpec, w: Workload, sched: &Sched, seeds: &[u64]) -> Repeated {
    repeat_cfg(cluster, w, sched, seeds, &SimConfig::default())
}

/// Like [`repeat`], but with an explicit engine configuration. All
/// reducers downstream of this ([`Repeated::mean`], [`Repeated::ci95`],
/// [`Repeated::first`]) are total: a degraded run whose worker thread
/// aborted contributes nothing rather than poisoning the summary.
pub fn repeat_cfg(
    cluster: &ClusterSpec,
    w: Workload,
    sched: &Sched,
    seeds: &[u64],
    config: &SimConfig,
) -> Repeated {
    let mut reports: Vec<Option<RunReport>> = (0..seeds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &seed) in reports.iter_mut().zip(seeds.iter()) {
            let sched = sched.clone();
            scope.spawn(move || {
                *slot = Some(run_workload_cfg(cluster, w, &sched, seed, config));
            });
        }
    });
    let reports: Vec<RunReport> = reports.into_iter().flatten().collect();
    let secs = reports.iter().map(|r| r.makespan.as_secs_f64()).collect();
    Repeated { secs, reports }
}

/// Debug census: per (stage template, node class) success counts and
/// mean durations — the calibration view used while matching the paper's
/// figures.
pub fn placement_census(cluster: &ClusterSpec, report: &RunReport) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} | makespan {} | completed {} | oom {} lost {} spec {} (wins {})",
        report.scheduler_name,
        report.makespan,
        report.completed,
        report.oom_failures,
        report.executor_losses,
        report.speculative_launched,
        report.speculative_wins
    );
    let mut census: BTreeMap<(rupam_simcore::Sym, String), (usize, f64)> = BTreeMap::new();
    for r in report.records.iter().filter(|r| r.outcome.is_success()) {
        let class = cluster.node(r.node).class.clone();
        let e = census.entry((r.template_key, class)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += r.duration().as_secs_f64();
    }
    for ((template, class), (n, tot)) in census {
        let _ = writeln!(
            out,
            "  {template:<16} {class:<8} n={n:<4} avg={:.1}s",
            tot / n as f64
        );
    }
    out
}

/// Convenience: Spark-vs-RUPAM pair for one workload.
pub fn head_to_head(cluster: &ClusterSpec, w: Workload, seeds: &[u64]) -> (Repeated, Repeated) {
    let spark = repeat(cluster, w, &Sched::Spark, seeds);
    let rupam = repeat(cluster, w, &Sched::Rupam, seeds);
    (spark, rupam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_workload_completes() {
        let cluster = ClusterSpec::hydra();
        let report = run_workload(&cluster, Workload::TeraSort, &Sched::Spark, 1);
        assert!(report.completed);
        assert_eq!(report.scheduler_name, "spark");
    }

    #[test]
    fn repeat_collects_all_seeds() {
        let cluster = ClusterSpec::hydra();
        let rep = repeat(&cluster, Workload::TeraSort, &Sched::Rupam, &[1, 2, 3]);
        assert_eq!(rep.secs.len(), 3);
        assert!(rep.mean() > 0.0);
        assert!(rep.ci95() >= 0.0);
        assert_eq!(rep.reports.len(), 3);
        assert_eq!(rep.first().expect("ran at least one seed").seed, 1);
    }

    #[test]
    fn first_is_none_without_seeds() {
        let cluster = ClusterSpec::hydra();
        let rep = repeat(&cluster, Workload::TeraSort, &Sched::Spark, &[]);
        assert!(rep.first().is_none());
        assert!(rep.secs.is_empty());
    }

    #[test]
    fn repeat_is_deterministic() {
        let cluster = ClusterSpec::hydra();
        let a = repeat(&cluster, Workload::GramianMatrix, &Sched::Spark, &[7, 8]);
        let b = repeat(&cluster, Workload::GramianMatrix, &Sched::Spark, &[7, 8]);
        assert_eq!(
            a.secs, b.secs,
            "parallel repetitions must stay deterministic"
        );
    }

    #[test]
    fn sched_labels() {
        assert_eq!(Sched::Spark.label(), "Spark");
        assert_eq!(Sched::Rupam.label(), "RUPAM");
        let cfg = RupamConfig {
            use_task_db: false,
            ..RupamConfig::default()
        };
        assert_eq!(Sched::RupamWith(cfg).label(), "rupam-nodb");
    }
}
