//! Ablations of RUPAM's design choices (DESIGN.md experiment index):
//! the task-characteristics DB, dynamic executor sizing, locality
//! awareness inside Algorithm 2, straggler handling, and the
//! `Res_factor` sensitivity knob.

use rupam::RupamConfig;
use rupam_cluster::ClusterSpec;
use rupam_metrics::table::{secs, speedup, Table};
use rupam_simcore::stats;
use rupam_workloads::Workload;

use crate::harness::{repeat, Sched};

/// One ablation variant.
pub struct Variant {
    /// Display name.
    pub name: String,
    /// Scheduler configuration.
    pub sched: Sched,
}

/// The standard ablation ladder.
pub fn variants() -> Vec<Variant> {
    let mut out = vec![
        Variant {
            name: "spark".into(),
            sched: Sched::Spark,
        },
        Variant {
            name: "rupam (full)".into(),
            sched: Sched::Rupam,
        },
    ];
    let nodb = RupamConfig {
        use_task_db: false,
        ..RupamConfig::default()
    };
    out.push(Variant {
        name: "rupam w/o task DB".into(),
        sched: Sched::RupamWith(nodb),
    });
    let staticmem = RupamConfig {
        dynamic_executors: false,
        ..RupamConfig::default()
    };
    out.push(Variant {
        name: "rupam w/o dynamic executors".into(),
        sched: Sched::RupamWith(staticmem),
    });
    let noloc = RupamConfig {
        use_locality: false,
        ..RupamConfig::default()
    };
    out.push(Variant {
        name: "rupam w/o locality".into(),
        sched: Sched::RupamWith(noloc),
    });
    let nostrag = RupamConfig {
        straggler_handling: false,
        ..RupamConfig::default()
    };
    out.push(Variant {
        name: "rupam w/o straggler handling".into(),
        sched: Sched::RupamWith(nostrag),
    });
    out
}

/// One ablation result row.
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Mean seconds per workload (LR, PR order).
    pub lr_secs: f64,
    /// PageRank mean seconds.
    pub pr_secs: f64,
    /// Memory failures over the PR repetitions.
    pub pr_memory_failures: usize,
}

/// Run the ablation ladder over LR (learning-sensitive) and PR
/// (memory-sensitive).
pub fn run(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<AblationRow> {
    variants()
        .into_iter()
        .map(|v| {
            let lr = repeat(cluster, Workload::LogisticRegression, &v.sched, seeds);
            let pr = repeat(cluster, Workload::PageRank, &v.sched, seeds);
            AblationRow {
                name: v.name,
                lr_secs: lr.mean(),
                pr_secs: pr.mean(),
                pr_memory_failures: pr.memory_failures(),
            }
        })
        .collect()
}

/// Render the ablation table (speedups relative to the Spark row).
pub fn table(rows: &[AblationRow]) -> Table {
    let spark_lr = rows[0].lr_secs;
    let spark_pr = rows[0].pr_secs;
    let mut t = Table::new(
        "Ablation — contribution of each RUPAM design choice",
        &[
            "variant",
            "LR (s)",
            "LR speedup",
            "PR (s)",
            "PR speedup",
            "PR mem failures",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.clone(),
            secs(r.lr_secs),
            speedup(spark_lr / r.lr_secs),
            secs(r.pr_secs),
            speedup(spark_pr / r.pr_secs),
            r.pr_memory_failures.to_string(),
        ]);
    }
    t
}

/// `Res_factor` sensitivity sweep on LR.
pub fn res_factor_sweep(cluster: &ClusterSpec, factors: &[f64], seeds: &[u64]) -> Vec<(f64, f64)> {
    factors
        .iter()
        .map(|&res_factor| {
            let cfg = RupamConfig {
                res_factor,
                ..RupamConfig::default()
            };
            let rep = repeat(
                cluster,
                Workload::LogisticRegression,
                &Sched::RupamWith(cfg),
                seeds,
            );
            (res_factor, rep.mean())
        })
        .collect()
}

/// Render the sweep.
pub fn res_factor_table(points: &[(f64, f64)]) -> Table {
    let mut t = Table::new("Res_factor sensitivity (LR)", &["Res_factor", "LR (s)"]);
    for (f, s) in points {
        t.row(&[format!("{f:.1}"), secs(*s)]);
    }
    let _ = stats::mean(&[]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_six_variants() {
        let vs = variants();
        assert_eq!(vs.len(), 6);
        assert_eq!(vs[0].name, "spark");
    }

    #[test]
    fn ablation_runs_and_renders() {
        let cluster = ClusterSpec::hydra();
        let rows = run(&cluster, &[1]);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.lr_secs > 0.0 && r.pr_secs > 0.0,
                "{} produced empty runs",
                r.name
            );
        }
        let t = table(&rows);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn res_factor_sweep_runs() {
        let cluster = ClusterSpec::hydra();
        let pts = res_factor_sweep(&cluster, &[1.5, 2.0], &[1]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.1 > 0.0));
    }
}
