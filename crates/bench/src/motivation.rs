//! The §II-B motivation experiments: Fig. 2 (per-resource utilisation of
//! MatMul over time) and Fig. 3 (task skew of PageRank on the two-node
//! cluster) — both run under *stock Spark*, since they motivate RUPAM.

use rupam_cluster::monitor::MetricKey;
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_metrics::report::RunReport;
use rupam_metrics::table::Table;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::{stats, RngFactory};
use rupam_workloads::matmul::{self, MatMulParams};
use rupam_workloads::pagerank::{self, PageRankParams};

use crate::harness::{run_app, Sched};

/// Fig. 2: run MatMul on the two-node cluster, returning the report
/// whose monitor carries the utilisation histories.
pub fn fig2_run(seed: u64) -> (ClusterSpec, RunReport) {
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = matmul::build(&cluster, &RngFactory::new(seed), &MatMulParams::default());
    let report = run_app(&cluster, &app, &layout, &Sched::Spark, seed);
    (cluster, report)
}

/// Cluster-mean utilisation of one metric resampled on `buckets` equal
/// intervals over the run (the Fig. 2 curves).
pub fn fig2_series(
    cluster: &ClusterSpec,
    report: &RunReport,
    key: MetricKey,
    buckets: usize,
) -> Vec<(f64, f64)> {
    assert!(buckets > 0);
    let step = SimDuration(report.makespan.as_micros().max(buckets as u64) / buckets as u64);
    (0..buckets)
        .map(|b| {
            let t0 = SimTime(step.as_micros() * b as u64);
            let t1 = t0 + step;
            // time-weighted bucket mean — instantaneous samples would
            // miss the short network/disk bursts Fig. 2 highlights
            let vals: Vec<f64> = (0..cluster.len())
                .map(|i| {
                    report
                        .monitor
                        .history(NodeId(i), key)
                        .time_weighted_mean(t0, t1)
                        .unwrap_or(0.0)
                })
                .collect();
            (t0.as_secs_f64(), stats::mean(&vals))
        })
        .collect()
}

/// Render Fig. 2 as a table of bucket rows.
pub fn fig2_table(cluster: &ClusterSpec, report: &RunReport, buckets: usize) -> Table {
    let cpu = fig2_series(cluster, report, MetricKey::CpuUtil, buckets);
    let mem = fig2_series(cluster, report, MetricKey::MemUsedGib, buckets);
    let net = fig2_series(cluster, report, MetricKey::NetMBps, buckets);
    let disk = fig2_series(cluster, report, MetricKey::DiskMBps, buckets);
    let mut t = Table::new(
        "Fig. 2 — System utilisation under 4K×4K matrix multiplication (cluster mean)",
        &[
            "t (s)",
            "CPU (%)",
            "Memory (GiB)",
            "Net (MB/s)",
            "Disk (MB/s)",
        ],
    );
    for i in 0..cpu.len() {
        t.row(&[
            format!("{:.0}", cpu[i].0),
            format!("{:.0}", cpu[i].1 * 100.0),
            format!("{:.1}", mem[i].1),
            format!("{:.0}", net[i].1),
            format!("{:.0}", disk[i].1),
        ]);
    }
    t
}

/// Fig. 3: PageRank on the two-node cluster under stock Spark.
/// The paper uses a 2 GB input; we scale the default generator up.
pub fn fig3_run(seed: u64) -> (ClusterSpec, RunReport) {
    let cluster = ClusterSpec::two_node_motivation();
    let params = PageRankParams {
        input: rupam_simcore::units::ByteSize::gib(2),
        partitions: 32,
        iterations: 4,
        // keep peaks inside the 2-node executors: skew, not OOM, is the
        // point of Fig. 3
        hot_peak_mem: rupam_simcore::units::ByteSize::gib(4),
        ..PageRankParams::default()
    };
    let (app, layout) = pagerank::build(&cluster, &RngFactory::new(seed), &params);
    let report = run_app(&cluster, &app, &layout, &Sched::Spark, seed);
    (cluster, report)
}

/// Fig. 3 summary: per-node task counts and per-node mean breakdown.
pub struct Fig3Node {
    /// The node.
    pub node: NodeId,
    /// Tasks assigned (non-speculative attempts).
    pub tasks: usize,
    /// Mean compute seconds.
    pub compute: f64,
    /// Mean shuffle seconds.
    pub shuffle: f64,
    /// Mean serialisation seconds.
    pub serialization: f64,
    /// Mean scheduler-delay seconds.
    pub sched_delay: f64,
}

/// Compute the Fig. 3 per-node summaries.
pub fn fig3_summary(cluster: &ClusterSpec, report: &RunReport) -> Vec<Fig3Node> {
    (0..cluster.len())
        .map(|i| {
            let node = NodeId(i);
            let recs: Vec<_> = report
                .records
                .iter()
                .filter(|r| r.node == node && r.outcome.is_success())
                .collect();
            let n = recs.len().max(1) as f64;
            let mut compute = 0.0;
            let mut shuffle = 0.0;
            let mut ser = 0.0;
            let mut sched = 0.0;
            for r in &recs {
                let (c, s, se, sd) = r.breakdown.coarse();
                compute += c.as_secs_f64();
                shuffle += s.as_secs_f64();
                ser += se.as_secs_f64();
                sched += sd.as_secs_f64();
            }
            Fig3Node {
                node,
                tasks: recs.len(),
                compute: compute / n,
                shuffle: shuffle / n,
                serialization: ser / n,
                sched_delay: sched / n,
            }
        })
        .collect()
}

/// Render Fig. 3.
pub fn fig3_table(cluster: &ClusterSpec, report: &RunReport) -> Table {
    let mut t = Table::new(
        "Fig. 3 — PageRank task distribution & breakdown on the 2-node cluster (stock Spark)",
        &[
            "node",
            "tasks",
            "compute (s)",
            "shuffle (s)",
            "serialization (s)",
            "sched delay (s)",
        ],
    );
    for row in fig3_summary(cluster, report) {
        t.row(&[
            cluster.node(row.node).name.clone(),
            row.tasks.to_string(),
            format!("{:.2}", row.compute),
            format!("{:.2}", row.shuffle),
            format!("{:.3}", row.serialization),
            format!("{:.3}", row.sched_delay),
        ]);
    }
    t
}

/// Max-over-min spread of successful task durations (the paper observes
/// up to 31× within one stage).
pub fn fig3_duration_spread(report: &RunReport) -> f64 {
    let durs = report.successful_durations_secs();
    let max = durs.iter().cloned().fold(0.0f64, f64::max);
    let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
    if min.is_finite() && min > 0.0 {
        max / min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes() {
        let (cluster, report) = fig2_run(1);
        assert!(report.completed);
        let cpu = fig2_series(&cluster, &report, MetricKey::CpuUtil, 12);
        assert_eq!(cpu.len(), 12);
        // CPU is busy at some point
        assert!(cpu.iter().any(|p| p.1 > 0.2));
        // memory ramps up: later mean > earlier mean
        let mem = fig2_series(&cluster, &report, MetricKey::MemUsedGib, 12);
        let early: f64 = mem[..4].iter().map(|p| p.1).sum();
        let late: f64 = mem[4..10].iter().map(|p| p.1).sum();
        assert!(late > early, "memory should ramp through the middle stages");
        // disk writes happen (shuffles)
        let disk = fig2_series(&cluster, &report, MetricKey::DiskMBps, 12);
        assert!(disk.iter().any(|p| p.1 > 1.0));
        let t = fig2_table(&cluster, &report, 12);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn fig3_shows_skew() {
        let (cluster, report) = fig3_run(1);
        assert!(report.completed);
        let rows = fig3_summary(&cluster, &report);
        assert_eq!(rows.len(), 2);
        let total: usize = rows.iter().map(|r| r.tasks).sum();
        assert!(total >= 32 * 8, "all PageRank tasks should appear");
        // duration spread within the run is large (paper: up to 31×)
        assert!(fig3_duration_spread(&report) > 3.0);
        let t = fig3_table(&cluster, &report);
        assert_eq!(t.len(), 2);
    }
}
