//! Table V — number of tasks at each locality level under stock Spark
//! vs RUPAM (§IV-C).

use rupam_cluster::ClusterSpec;
use rupam_metrics::table::Table;
use rupam_workloads::Workload;

use crate::harness::{run_workload, Sched};

/// One Table V row.
pub struct LocalityRow {
    /// Workload.
    pub workload: Workload,
    /// Spark counts `[PROCESS, NODE, RACK, ANY]`.
    pub spark: [usize; 4],
    /// RUPAM counts `[PROCESS, NODE, RACK, ANY]`.
    pub rupam: [usize; 4],
}

impl LocalityRow {
    /// Total attempts under Spark (retries inflate this on OOM-prone
    /// workloads — the paper's TeraSort/TC observation).
    pub fn spark_total(&self) -> usize {
        self.spark.iter().sum()
    }

    /// Total attempts under RUPAM.
    pub fn rupam_total(&self) -> usize {
        self.rupam.iter().sum()
    }
}

/// Run the census for every workload (single run per scheduler, like
/// the paper's per-run table).
pub fn table5(cluster: &ClusterSpec, seed: u64) -> Vec<LocalityRow> {
    Workload::ALL
        .iter()
        .map(|&workload| {
            let spark = run_workload(cluster, workload, &Sched::Spark, seed).locality_counts();
            let rupam = run_workload(cluster, workload, &Sched::Rupam, seed).locality_counts();
            LocalityRow {
                workload,
                spark,
                rupam,
            }
        })
        .collect()
}

/// Render Table V (the paper prints PROCESS / NODE / ANY; rack-local
/// counts are folded into ANY for presentation, matching "all workloads
/// have zero RACK_LOCAL tasks" on its flat testbed).
pub fn table5_table(rows: &[LocalityRow]) -> Table {
    let mut t = Table::new(
        "Table V — Number of tasks per locality level",
        &[
            "workload",
            "PROCESS Spark",
            "PROCESS RUPAM",
            "NODE Spark",
            "NODE RUPAM",
            "ANY Spark",
            "ANY RUPAM",
        ],
    );
    for r in rows {
        t.row(&[
            r.workload.short().to_string(),
            r.spark[0].to_string(),
            r.rupam[0].to_string(),
            r.spark[1].to_string(),
            r.rupam[1].to_string(),
            (r.spark[2] + r.spark[3]).to_string(),
            (r.rupam[2] + r.rupam[3]).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_all_tasks() {
        let cluster = ClusterSpec::hydra();
        let rows = table5(&cluster, 7);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            // at least every task ran once under each scheduler
            let (app, _) = r
                .workload
                .build(&cluster, &rupam_simcore::RngFactory::new(7));
            assert!(
                r.spark_total() >= app.total_tasks(),
                "{}: spark census {} < total tasks {}",
                r.workload,
                r.spark_total(),
                app.total_tasks()
            );
            assert!(r.rupam_total() >= app.total_tasks());
        }
        let t = table5_table(&rows);
        assert_eq!(t.len(), 7);
    }
}
