//! Table II (Hydra node specifications) and Table IV (hardware
//! characteristics microbenchmarks).

use rupam_cluster::microbench::{table_iv, HardwareRow};
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_metrics::table::Table;

/// Render Table II from the cluster spec.
pub fn table2(cluster: &ClusterSpec) -> Table {
    let mut t = Table::new(
        "Table II — Specifications of Hydra cluster nodes",
        &[
            "Name",
            "CPU (GHz eff.)",
            "Cores",
            "Memory (GB)",
            "Network (GbE)",
            "SSD",
            "GPU",
            "#",
        ],
    );
    let mut seen: Vec<String> = Vec::new();
    for (_, spec) in cluster.iter() {
        if seen.contains(&spec.class) {
            continue;
        }
        seen.push(spec.class.clone());
        let count = cluster.nodes_in_class(&spec.class).len();
        t.row(&[
            spec.class.clone(),
            format!("{:.2}", spec.cpu_ghz),
            spec.cores.to_string(),
            format!("{:.0}", spec.mem.as_gib()),
            format!("{:.0}", spec.net_bw * 8.0 / 1e9),
            if spec.disk.is_ssd { "Y" } else { "N" }.to_string(),
            if spec.gpus > 0 { "Y" } else { "N" }.to_string(),
            count.to_string(),
        ]);
    }
    t
}

/// Compute Table IV rows (master on `stack1`, like the paper).
pub fn table4_rows(cluster: &ClusterSpec) -> Vec<HardwareRow> {
    let master = cluster
        .nodes_in_class("stack")
        .first()
        .copied()
        .unwrap_or(NodeId(0));
    table_iv(cluster, master)
}

/// Render Table IV.
pub fn table4(cluster: &ClusterSpec) -> Table {
    let mut t = Table::new(
        "Table IV — Hardware characteristics benchmarks (SysBench / Iperf models)",
        &[
            "SysBench",
            "CPU (sec)/latency (ms)",
            "I/O read (MB/s)",
            "I/O write (MB/s)",
            "Network (Mbits/s)",
        ],
    );
    for row in table4_rows(cluster) {
        t.row(&[
            row.class.clone(),
            format!("{:.2}/{:.2}", row.cpu.seconds, row.cpu.latency_ms),
            format!("{:.0}", row.io.read_mbps),
            format!("{:.0}", row.io.write_mbps),
            format!("{:.0}", row.net_mbits),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_classes() {
        let t = table2(&ClusterSpec::hydra());
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("thor") && s.contains("hulk") && s.contains("stack"));
    }

    #[test]
    fn table4_reproduces_paper_ratios() {
        let rows = table4_rows(&ClusterSpec::hydra());
        let get = |c: &str| rows.iter().find(|r| r.class == c).unwrap();
        // thor much faster per-core (≈3× calibrated; the paper's SysBench
        // reports 5× — see EXPERIMENTS.md); thor SSD dominates; network uniform
        assert!(get("hulk").cpu.seconds / get("thor").cpu.seconds > 2.5);
        assert!(get("thor").io.read_mbps > 3.0 * get("stack").io.read_mbps);
        assert!((get("thor").net_mbits - get("hulk").net_mbits).abs() < 20.0);
        let rendered = table4(&ClusterSpec::hydra()).render();
        assert!(rendered.contains("thor"));
    }
}
