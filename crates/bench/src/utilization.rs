//! Fig. 8 — average system utilisation (CPU, memory, network, disk) and
//! Fig. 9 — load balance (std-dev of per-node utilisation over time).

use rupam_cluster::monitor::MetricKey;
use rupam_cluster::ClusterSpec;
use rupam_metrics::report::RunReport;
use rupam_metrics::table::Table;
use rupam_simcore::time::SimDuration;
use rupam_workloads::Workload;

use crate::harness::{run_workload, Sched};

/// Fig. 8's selected workloads (same three as Fig. 7).
pub const FIG8_WORKLOADS: [Workload; 3] = [
    Workload::LogisticRegression,
    Workload::Sql,
    Workload::PageRank,
];

/// One Fig. 8 cell: the four average utilisation metrics of a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct UtilSummary {
    /// Mean busy-core fraction (Fig. 8a, "CPU User %").
    pub cpu: f64,
    /// Mean memory in use, GiB (Fig. 8b).
    pub mem_gib: f64,
    /// Mean network throughput, MB/s (Fig. 8c).
    pub net_mbps: f64,
    /// Mean disk throughput, MB/s (Fig. 8d).
    pub disk_mbps: f64,
}

/// Average utilisation of one run.
pub fn summarize(report: &RunReport) -> UtilSummary {
    UtilSummary {
        cpu: report.avg_utilization(MetricKey::CpuUtil),
        mem_gib: report.avg_utilization(MetricKey::MemUsedGib),
        net_mbps: report.avg_utilization(MetricKey::NetMBps),
        disk_mbps: report.avg_utilization(MetricKey::DiskMBps),
    }
}

/// One Fig. 8 row.
pub struct Fig8Row {
    /// Workload.
    pub workload: Workload,
    /// Spark utilisation.
    pub spark: UtilSummary,
    /// RUPAM utilisation.
    pub rupam: UtilSummary,
}

/// Run Fig. 8.
pub fn fig8(cluster: &ClusterSpec, seed: u64) -> Vec<Fig8Row> {
    FIG8_WORKLOADS
        .iter()
        .map(|&workload| {
            let spark = summarize(&run_workload(cluster, workload, &Sched::Spark, seed));
            let rupam = summarize(&run_workload(cluster, workload, &Sched::Rupam, seed));
            Fig8Row {
                workload,
                spark,
                rupam,
            }
        })
        .collect()
}

/// Render Fig. 8.
pub fn fig8_table(rows: &[Fig8Row]) -> Table {
    let mut t = Table::new(
        "Fig. 8 — Average system utilisation across the cluster",
        &[
            "workload",
            "sched",
            "CPU (%)",
            "Memory (GiB)",
            "Net (MB/s)",
            "Disk (MB/s)",
        ],
    );
    for r in rows {
        for (label, u) in [("Spark", &r.spark), ("RUPAM", &r.rupam)] {
            t.row(&[
                r.workload.short().to_string(),
                label.to_string(),
                format!("{:.1}", u.cpu * 100.0),
                format!("{:.1}", u.mem_gib),
                format!("{:.1}", u.net_mbps),
                format!("{:.1}", u.disk_mbps),
            ]);
        }
    }
    t
}

/// Fig. 9: mean std-dev of per-node utilisation over time, per metric,
/// for PageRank under both schedulers. Lower = better balanced.
#[derive(Clone, Copy, Debug, Default)]
pub struct BalanceSummary {
    /// CPU-utilisation spread.
    pub cpu: f64,
    /// Network-throughput spread (MB/s).
    pub net_mbps: f64,
    /// Disk-throughput spread (MB/s).
    pub disk_mbps: f64,
}

/// Compute the Fig. 9 balance summary of one run (memory is omitted,
/// like the paper: RUPAM deliberately uses all available memory).
pub fn balance(report: &RunReport) -> BalanceSummary {
    let step = SimDuration::from_secs(1);
    BalanceSummary {
        cpu: report.utilization_stddev_mean(MetricKey::CpuUtil, step),
        net_mbps: report.utilization_stddev_mean(MetricKey::NetMBps, step),
        disk_mbps: report.utilization_stddev_mean(MetricKey::DiskMBps, step),
    }
}

/// Fig. 9 result pair.
pub struct Fig9 {
    /// Spark balance.
    pub spark: BalanceSummary,
    /// RUPAM balance.
    pub rupam: BalanceSummary,
    /// Spark per-second CPU-stddev series (for plotting).
    pub spark_cpu_series: Vec<(f64, f64)>,
    /// RUPAM per-second CPU-stddev series.
    pub rupam_cpu_series: Vec<(f64, f64)>,
}

/// Run Fig. 9 (PageRank).
pub fn fig9(cluster: &ClusterSpec, seed: u64) -> Fig9 {
    let spark_report = run_workload(cluster, Workload::PageRank, &Sched::Spark, seed);
    let rupam_report = run_workload(cluster, Workload::PageRank, &Sched::Rupam, seed);
    let series = |r: &RunReport| {
        r.utilization_stddev_series(MetricKey::CpuUtil, SimDuration::from_secs(1))
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect::<Vec<_>>()
    };
    Fig9 {
        spark: balance(&spark_report),
        rupam: balance(&rupam_report),
        spark_cpu_series: series(&spark_report),
        rupam_cpu_series: series(&rupam_report),
    }
}

/// Render Fig. 9's summary.
pub fn fig9_table(f: &Fig9) -> Table {
    let mut t = Table::new(
        "Fig. 9 — Std-dev of per-node utilisation during PageRank (lower = better balance)",
        &["sched", "CPU util σ", "Net σ (MB/s)", "Disk σ (MB/s)"],
    );
    t.row(&[
        "Spark".into(),
        format!("{:.3}", f.spark.cpu),
        format!("{:.2}", f.spark.net_mbps),
        format!("{:.2}", f.spark.disk_mbps),
    ]);
    t.row(&[
        "RUPAM".into(),
        format!("{:.3}", f.rupam.cpu),
        format!("{:.2}", f.rupam.net_mbps),
        format!("{:.2}", f.rupam.disk_mbps),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_summary_nonzero() {
        let cluster = ClusterSpec::hydra();
        let report = run_workload(&cluster, Workload::TeraSort, &Sched::Spark, 2);
        let u = summarize(&report);
        assert!(u.cpu > 0.0 && u.cpu <= 1.0);
        assert!(u.disk_mbps > 0.0, "TeraSort moves disk bytes");
    }

    #[test]
    fn fig9_series_lengths_track_makespans() {
        let cluster = ClusterSpec::hydra();
        let f = fig9(&cluster, 3);
        assert!(!f.spark_cpu_series.is_empty());
        assert!(!f.rupam_cpu_series.is_empty());
        let t = fig9_table(&f);
        assert_eq!(t.len(), 2);
    }
}
