//! Beyond-paper: the multi-tenant workload stream.
//!
//! The paper runs one application at a time and clears `DB_task_char`
//! between repetitions, but §III-B keys the DB so that *later* jobs
//! reuse what earlier ones banked. This experiment exercises that
//! setting directly: a seeded stream of suite workloads arrives online
//! at one shared Hydra cluster, scheduled by one long-lived scheduler,
//! and we report per-tenant job completion times (JCT) instead of a
//! single makespan.
//!
//! Two questions:
//! 1. Does RUPAM's advantage over stock Spark / FIFO survive contention
//!    between concurrent tenants? (`run` / `table`)
//! 2. How much of RUPAM's gain comes from the warm DB — i.e. from later
//!    tenants inheriting the characterizations of earlier ones?
//!    (`warm_vs_cold` / `warm_vs_cold_table`: the cold control scopes
//!    every DB entry to the tenant that produced it.)

use rand::Rng;
use rupam::RupamConfig;
use rupam_cluster::ClusterSpec;
use rupam_dag::{JobStream, MergedStream};
use rupam_metrics::table::{secs, Table};
use rupam_simcore::time::SimTime;
use rupam_simcore::{stats, RngFactory};
use rupam_workloads::Workload;

use crate::harness::{run_stream, Sched};

/// The default tenant mix: four workloads spanning the suite's compute-,
/// shuffle-, and memory-bound corners.
pub const TENANTS: [Workload; 4] = [
    Workload::LogisticRegression,
    Workload::TeraSort,
    Workload::PageRank,
    Workload::GramianMatrix,
];

/// Mean inter-arrival gap of the default stream (seconds). Short enough
/// that tenants overlap on the cluster, long enough that the stream is
/// genuinely online rather than a batch.
pub const MEAN_GAP_SECS: f64 = 30.0;

/// Build a seeded stream: each workload arrives after an exponential
/// inter-arrival gap (Poisson arrivals), with per-tenant seeded inputs.
pub fn build_stream(
    cluster: &ClusterSpec,
    workloads: &[Workload],
    mean_gap_secs: f64,
    seed: u64,
) -> MergedStream {
    assert!(!workloads.is_empty(), "a stream needs at least one tenant");
    let mut arrivals = RngFactory::new(seed).stream("stream-arrivals");
    let mut stream = JobStream::new();
    let mut t = 0.0f64;
    for (i, &w) in workloads.iter().enumerate() {
        let (app, layout) = w.build(cluster, &RngFactory::new(seed.wrapping_add(i as u64)));
        stream.push(
            format!("{}#{i}", w.short()),
            app,
            layout,
            SimTime::from_secs_f64(t),
        );
        // exponential gap via inverse CDF; 1-u keeps the log argument
        // strictly positive
        let u: f64 = arrivals.gen_range(0.0..1.0);
        t += -mean_gap_secs * (1.0 - u).ln();
    }
    stream.merge()
}

/// One scheduler's aggregate over the repeated streams.
pub struct TenantRow {
    /// Scheduler label.
    pub sched: String,
    /// Mean JCT across all tenants and seeds (seconds).
    pub jct_mean: f64,
    /// p95 JCT across seeds (mean of per-run p95s, seconds).
    pub jct_p95: f64,
    /// Mean stream makespan (seconds).
    pub makespan: f64,
    /// All runs completed.
    pub completed: bool,
}

/// Run the default 4-tenant stream under RUPAM, stock Spark, and FIFO.
pub fn run(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<TenantRow> {
    [Sched::Rupam, Sched::Spark, Sched::Fifo]
        .iter()
        .map(|sched| {
            let mut jct_means = Vec::new();
            let mut jct_p95s = Vec::new();
            let mut makespans = Vec::new();
            let mut completed = true;
            for &seed in seeds {
                let stream = build_stream(cluster, &TENANTS, MEAN_GAP_SECS, seed);
                let report = run_stream(cluster, &stream, sched, seed);
                completed &= report.completed;
                jct_means.push(report.jct_mean());
                jct_p95s.push(report.jct_p95());
                makespans.push(report.makespan.as_secs_f64());
            }
            TenantRow {
                sched: sched.label(),
                jct_mean: stats::mean(&jct_means),
                jct_p95: stats::mean(&jct_p95s),
                makespan: stats::mean(&makespans),
                completed,
            }
        })
        .collect()
}

/// Render the scheduler comparison.
pub fn table(rows: &[TenantRow]) -> Table {
    let mut t = Table::new(
        "Multi-tenant stream — 4 tenants, Poisson arrivals (mean gap 30 s)",
        &["scheduler", "mean JCT (s)", "p95 JCT (s)", "makespan (s)"],
    );
    for r in rows {
        t.row(&[
            r.sched.clone(),
            secs(r.jct_mean),
            secs(r.jct_p95),
            secs(r.makespan),
        ]);
    }
    t
}

/// Warm-vs-cold `DB_task_char` ablation result.
pub struct WarmCold {
    /// Mean JCT with the cross-job warm DB (seconds).
    pub warm_jct: f64,
    /// Mean JCT with per-tenant scoped (cold) DB entries (seconds).
    pub cold_jct: f64,
}

impl WarmCold {
    /// Relative JCT change of going cold: positive means the warm DB
    /// helps.
    pub fn cold_penalty(&self) -> f64 {
        (self.cold_jct - self.warm_jct) / self.warm_jct
    }
}

/// Isolate the warm-DB effect: a stream of *identical* workloads (same
/// template keys) where every tenant after the first can, with a warm
/// DB, skip its first-contact exploration entirely.
pub fn warm_vs_cold(cluster: &ClusterSpec, workload: Workload, seeds: &[u64]) -> WarmCold {
    let tenants = [workload; 4];
    let mut warm = Vec::new();
    let mut cold = Vec::new();
    for &seed in seeds {
        let stream = build_stream(cluster, &tenants, MEAN_GAP_SECS, seed);
        let warm_report = run_stream(cluster, &stream, &Sched::Rupam, seed);
        let cold_cfg = RupamConfig {
            cross_job_db: false,
            ..RupamConfig::default()
        };
        let cold_report = run_stream(cluster, &stream, &Sched::RupamWith(cold_cfg), seed);
        assert!(warm_report.completed && cold_report.completed);
        warm.push(warm_report.jct_mean());
        cold.push(cold_report.jct_mean());
    }
    WarmCold {
        warm_jct: stats::mean(&warm),
        cold_jct: stats::mean(&cold),
    }
}

/// Render the ablation.
pub fn warm_vs_cold_table(workload: Workload, r: &WarmCold) -> Table {
    let mut t = Table::new(
        format!(
            "Warm vs cold DB_task_char — 4x {} stream, RUPAM",
            workload.short()
        ),
        &["DB", "mean JCT (s)", "vs warm"],
    );
    t.row(&["warm (cross-job)".into(), secs(r.warm_jct), "—".into()]);
    t.row(&[
        "cold (per-tenant)".into(),
        secs(r.cold_jct),
        format!("{:+.1}%", r.cold_penalty() * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_arrivals_are_seeded_and_increasing() {
        let cluster = ClusterSpec::hydra();
        let a = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 42);
        let b = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 42);
        assert_eq!(a.jobs.len(), 4);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.arrival, y.arrival, "stream must be seed-deterministic");
        }
        assert!(a.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.jobs[0].arrival, SimTime::ZERO);
        assert!(
            a.jobs[3].arrival > SimTime::ZERO,
            "later tenants arrive later"
        );
    }

    #[test]
    fn four_tenants_complete_under_all_schedulers_with_jcts() {
        let cluster = ClusterSpec::hydra();
        let rows = run(&cluster, &[1]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.completed, "{} left tenants unfinished", r.sched);
            assert!(r.jct_mean > 0.0 && r.jct_p95 >= r.jct_mean);
        }
        assert_eq!(table(&rows).len(), 3);
    }

    #[test]
    fn warm_db_measurably_changes_rupam_jct() {
        let cluster = ClusterSpec::hydra();
        let r = warm_vs_cold(&cluster, Workload::LogisticRegression, &[1]);
        assert!(r.warm_jct > 0.0 && r.cold_jct > 0.0);
        assert!(
            (r.cold_jct - r.warm_jct).abs() / r.warm_jct > 0.001,
            "warm and cold DB runs are indistinguishable (warm {:.1}s, cold {:.1}s)",
            r.warm_jct,
            r.cold_jct
        );
    }
}
