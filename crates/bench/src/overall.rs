//! Fig. 5 (overall performance) and Fig. 6 (LR speedup vs iterations).

use rupam_cluster::ClusterSpec;
use rupam_dag::data::DataLayout;
use rupam_metrics::table::{secs, speedup, Table};
use rupam_simcore::{stats, RngFactory};
use rupam_workloads::lr::{self, LrParams};
use rupam_workloads::Workload;

use crate::harness::{head_to_head, run_app, Repeated, Sched};

/// One Fig. 5 row.
pub struct OverallRow {
    /// Workload.
    pub workload: Workload,
    /// Spark repetitions.
    pub spark: Repeated,
    /// RUPAM repetitions.
    pub rupam: Repeated,
}

impl OverallRow {
    /// Mean speedup of RUPAM over Spark.
    pub fn speedup(&self) -> f64 {
        self.spark.mean() / self.rupam.mean()
    }
}

/// Fig. 5: run every Table III workload under both schedulers.
pub fn fig5(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<OverallRow> {
    Workload::ALL
        .iter()
        .map(|&workload| {
            let (spark, rupam) = head_to_head(cluster, workload, seeds);
            OverallRow {
                workload,
                spark,
                rupam,
            }
        })
        .collect()
}

/// Render Fig. 5 as the paper-style table.
pub fn fig5_table(rows: &[OverallRow]) -> Table {
    let mut t = Table::new(
        "Fig. 5 — Overall performance (mean execution time, 5 runs, DB cleared between runs)",
        &[
            "workload",
            "Spark (s)",
            "±95%",
            "RUPAM (s)",
            "±95%",
            "speedup",
        ],
    );
    for r in rows {
        t.row(&[
            r.workload.short().to_string(),
            secs(r.spark.mean()),
            secs(r.spark.ci95()),
            secs(r.rupam.mean()),
            secs(r.rupam.ci95()),
            speedup(r.speedup()),
        ]);
    }
    t
}

/// The paper's headline aggregates for Fig. 5.
pub struct Fig5Summary {
    /// Mean reduction of execution time across workloads (paper: 37.7 %).
    pub mean_reduction: f64,
    /// Geometric-mean speedup of the iterative workloads (paper ≈ 2.62).
    pub iterative_speedup: f64,
    /// Geometric-mean speedup of the one-shot workloads.
    pub oneshot_speedup: f64,
}

/// Aggregate Fig. 5 rows the way the paper's prose does.
pub fn fig5_summary(rows: &[OverallRow]) -> Fig5Summary {
    let reductions: Vec<f64> = rows
        .iter()
        .map(|r| 1.0 - r.rupam.mean() / r.spark.mean())
        .collect();
    let iter: Vec<f64> = rows
        .iter()
        .filter(|r| r.workload.is_iterative())
        .map(|r| r.speedup())
        .collect();
    let oneshot: Vec<f64> = rows
        .iter()
        .filter(|r| !r.workload.is_iterative())
        .map(|r| r.speedup())
        .collect();
    Fig5Summary {
        mean_reduction: stats::mean(&reductions),
        iterative_speedup: stats::geomean(&iter),
        oneshot_speedup: stats::geomean(&oneshot),
    }
}

/// One Fig. 6 point.
pub struct IterationPoint {
    /// LR iteration count.
    pub iterations: usize,
    /// Spark mean seconds.
    pub spark_secs: f64,
    /// RUPAM mean seconds.
    pub rupam_secs: f64,
}

impl IterationPoint {
    /// RUPAM speedup at this iteration count.
    pub fn speedup(&self) -> f64 {
        self.spark_secs / self.rupam_secs
    }
}

/// Fig. 6: sweep LR iteration counts; speedup should grow with
/// iterations (paper: up to ≈ 3.4×) and never fall below ≈ 1×.
pub fn fig6(
    cluster: &ClusterSpec,
    iteration_counts: &[usize],
    seeds: &[u64],
) -> Vec<IterationPoint> {
    iteration_counts
        .iter()
        .map(|&iterations| {
            let mut spark = Vec::new();
            let mut rupam = Vec::new();
            for &seed in seeds {
                let params = LrParams {
                    iterations,
                    ..LrParams::default()
                };
                let (app, layout) = lr::build(cluster, &RngFactory::new(seed), &params);
                spark.push(
                    run_app(cluster, &app, &layout, &Sched::Spark, seed)
                        .makespan
                        .as_secs_f64(),
                );
                rupam.push(
                    run_app(cluster, &app, &layout, &Sched::Rupam, seed)
                        .makespan
                        .as_secs_f64(),
                );
            }
            IterationPoint {
                iterations,
                spark_secs: stats::mean(&spark),
                rupam_secs: stats::mean(&rupam),
            }
        })
        .collect()
}

/// Render Fig. 6 as a table.
pub fn fig6_table(points: &[IterationPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — LR speedup vs workload iterations",
        &["iterations", "Spark (s)", "RUPAM (s)", "speedup"],
    );
    for p in points {
        t.row(&[
            p.iterations.to_string(),
            secs(p.spark_secs),
            secs(p.rupam_secs),
            speedup(p.speedup()),
        ]);
    }
    t
}

/// Helper for benches: run one workload pair quickly (first seed only).
pub fn quick_pair(cluster: &ClusterSpec, w: Workload, seed: u64) -> (f64, f64) {
    let rngf = RngFactory::new(seed);
    let (app, layout) = w.build(cluster, &rngf);
    let _ = DataLayout::new();
    let s = run_app(cluster, &app, &layout, &Sched::Spark, seed)
        .makespan
        .as_secs_f64();
    let r = run_app(cluster, &app, &layout, &Sched::Rupam, seed)
        .makespan
        .as_secs_f64();
    (s, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_row_speedup() {
        let cluster = ClusterSpec::hydra();
        let rows = fig5(&cluster, &[1]);
        assert_eq!(rows.len(), 7);
        let table = fig5_table(&rows);
        assert_eq!(table.len(), 7);
        for r in &rows {
            assert!(r.spark.mean() > 0.0 && r.rupam.mean() > 0.0);
        }
    }

    #[test]
    fn fig6_points_shape() {
        let cluster = ClusterSpec::hydra();
        let pts = fig6(&cluster, &[1, 4], &[1]);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].speedup() > pts[0].speedup() * 0.8,
            "speedup should not collapse with iterations"
        );
        let table = fig6_table(&pts);
        assert_eq!(table.len(), 2);
    }
}
