//! Heterogeneity-sensitivity sweep (beyond-paper ablation).
//!
//! The paper argues RUPAM's value grows with hardware diversity ("rolling
//! server upgrades … inherently make the systems more heterogeneous").
//! This sweep quantifies that: run one workload across cluster mixes from
//! uniform to strongly mixed and report the RUPAM-vs-Spark speedup at
//! each point. The expectation (and the result recorded in
//! EXPERIMENTS.md): speedup ≈ 1× on uniform hardware and grows with the
//! diversity of the mix.

use rupam_cluster::ClusterSpec;
use rupam_metrics::table::{secs, speedup, Table};
use rupam_simcore::stats;
use rupam_workloads::Workload;

use crate::harness::{repeat, Sched};

/// One cluster-composition point.
pub struct MixPoint {
    /// Display label.
    pub label: String,
    /// The cluster under test.
    pub cluster: ClusterSpec,
}

/// The default sweep ladder: uniform clusters of each class, then
/// progressively mixed ones up to the paper's Hydra blend. Total node
/// count stays fixed at 12 so capacity effects don't dominate.
pub fn default_ladder() -> Vec<MixPoint> {
    vec![
        MixPoint {
            label: "12 thor (uniform fast)".into(),
            cluster: ClusterSpec::hydra_mix(12, 0, 0),
        },
        MixPoint {
            label: "12 hulk (uniform slow)".into(),
            cluster: ClusterSpec::hydra_mix(0, 12, 0),
        },
        MixPoint {
            label: "9 thor / 3 hulk".into(),
            cluster: ClusterSpec::hydra_mix(9, 3, 0),
        },
        MixPoint {
            label: "6 thor / 6 hulk".into(),
            cluster: ClusterSpec::hydra_mix(6, 6, 0),
        },
        MixPoint {
            label: "6 thor / 4 hulk / 2 stack (Hydra)".into(),
            cluster: ClusterSpec::hydra_mix(6, 4, 2),
        },
        MixPoint {
            label: "3 thor / 6 hulk / 3 stack".into(),
            cluster: ClusterSpec::hydra_mix(3, 6, 3),
        },
    ]
}

/// Result row of the sweep.
pub struct MixResult {
    /// Composition label.
    pub label: String,
    /// Spark mean seconds.
    pub spark_secs: f64,
    /// RUPAM mean seconds.
    pub rupam_secs: f64,
}

impl MixResult {
    /// RUPAM speedup at this mix.
    pub fn speedup(&self) -> f64 {
        self.spark_secs / self.rupam_secs
    }
}

/// Run the sweep for one workload.
pub fn sweep(points: &[MixPoint], workload: Workload, seeds: &[u64]) -> Vec<MixResult> {
    points
        .iter()
        .map(|p| {
            let spark = repeat(&p.cluster, workload, &Sched::Spark, seeds);
            let rupam = repeat(&p.cluster, workload, &Sched::Rupam, seeds);
            MixResult {
                label: p.label.clone(),
                spark_secs: spark.mean(),
                rupam_secs: rupam.mean(),
            }
        })
        .collect()
}

/// Render the sweep.
pub fn table(workload: Workload, rows: &[MixResult]) -> Table {
    let mut t = Table::new(
        format!(
            "Heterogeneity sensitivity — {} across cluster mixes",
            workload.name()
        ),
        &["cluster mix", "Spark (s)", "RUPAM (s)", "speedup"],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            secs(r.spark_secs),
            secs(r.rupam_secs),
            speedup(r.speedup()),
        ]);
    }
    t
}

/// Summary statistic: the spread between the best and worst speedup over
/// the ladder (how much composition matters).
pub fn speedup_spread(rows: &[MixResult]) -> f64 {
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup()).collect();
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let _ = stats::mean(&speedups);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_twelve_nodes_everywhere() {
        for p in default_ladder() {
            assert_eq!(p.cluster.len(), 12, "{}", p.label);
        }
    }

    #[test]
    fn uniform_mix_is_near_parity_and_hydra_is_not() {
        // cheap two-point version of the full sweep
        let points = vec![
            MixPoint {
                label: "uniform".into(),
                cluster: ClusterSpec::hydra_mix(12, 0, 0),
            },
            MixPoint {
                label: "hydra".into(),
                cluster: ClusterSpec::hydra_mix(6, 4, 2),
            },
        ];
        let rows = sweep(&points, Workload::LogisticRegression, &[101]);
        assert_eq!(rows.len(), 2);
        let uniform = rows[0].speedup();
        let hydra = rows[1].speedup();
        assert!(
            (0.8..1.4).contains(&uniform),
            "uniform cluster should be near parity, got {uniform:.2}x"
        );
        assert!(
            hydra > uniform,
            "heterogeneity should widen the gap: uniform {uniform:.2}x vs hydra {hydra:.2}x"
        );
        let t = table(Workload::LogisticRegression, &rows);
        assert_eq!(t.len(), 2);
        assert!(speedup_spread(&rows) > 0.0);
    }
}
