//! Fig. 7 — performance breakdown of LR, SQL and PageRank into the
//! paper's five categories (compute, GC, shuffle over the network,
//! shuffle from/to disk, scheduler delay).

use rupam_cluster::ClusterSpec;
use rupam_metrics::breakdown::BreakdownCategory as C;
use rupam_metrics::report::RunReport;
use rupam_metrics::table::{secs, Table};
use rupam_workloads::Workload;

use crate::harness::{run_workload, Sched};

/// The paper's Fig. 7 category totals, in seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fig7Breakdown {
    /// Compute (incl. serialisation, per Spark's `computetime`).
    pub compute: f64,
    /// Garbage collection.
    pub gc: f64,
    /// Shuffle over the network (incl. remote input fetch).
    pub shuffle_net: f64,
    /// Shuffle/input from and to local disk.
    pub shuffle_disk: f64,
    /// Scheduler delay.
    pub scheduler: f64,
}

/// Project a run onto the Fig. 7 categories.
pub fn project(report: &RunReport) -> Fig7Breakdown {
    let b = report.breakdown_totals();
    Fig7Breakdown {
        compute: (b.get(C::Compute) + b.get(C::Serialization)).as_secs_f64(),
        gc: b.get(C::Gc).as_secs_f64(),
        shuffle_net: (b.get(C::ShuffleNet) + b.get(C::HdfsNet)).as_secs_f64(),
        shuffle_disk: (b.get(C::ShuffleDisk) + b.get(C::HdfsDisk) + b.get(C::ShuffleWrite))
            .as_secs_f64(),
        scheduler: b.get(C::SchedulerDelay).as_secs_f64(),
    }
}

/// One Fig. 7 panel: a workload under both schedulers.
pub struct Fig7Row {
    /// Workload.
    pub workload: Workload,
    /// Spark totals.
    pub spark: Fig7Breakdown,
    /// RUPAM totals.
    pub rupam: Fig7Breakdown,
}

/// The paper's three panels: LR (machine learning), SQL (database),
/// PR (graph).
pub const FIG7_WORKLOADS: [Workload; 3] = [
    Workload::LogisticRegression,
    Workload::Sql,
    Workload::PageRank,
];

/// Run Fig. 7.
pub fn fig7(cluster: &ClusterSpec, seed: u64) -> Vec<Fig7Row> {
    FIG7_WORKLOADS
        .iter()
        .map(|&workload| {
            let spark = project(&run_workload(cluster, workload, &Sched::Spark, seed));
            let rupam = project(&run_workload(cluster, workload, &Sched::Rupam, seed));
            Fig7Row {
                workload,
                spark,
                rupam,
            }
        })
        .collect()
}

/// Render Fig. 7.
pub fn fig7_table(rows: &[Fig7Row]) -> Table {
    let mut t = Table::new(
        "Fig. 7 — Performance breakdown (total task-seconds per category)",
        &[
            "workload",
            "sched",
            "Compute",
            "GC",
            "Shuffle-net",
            "Shuffle-disk",
            "Scheduler",
        ],
    );
    for r in rows {
        for (label, b) in [("Spark", &r.spark), ("RUPAM", &r.rupam)] {
            t.row(&[
                r.workload.short().to_string(),
                label.to_string(),
                secs(b.compute),
                secs(b.gc),
                secs(b.shuffle_net),
                secs(b.shuffle_disk),
                format!("{:.2}", b.scheduler),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_covers_categories() {
        let cluster = ClusterSpec::hydra();
        let report = run_workload(&cluster, Workload::TeraSort, &Sched::Spark, 3);
        let p = project(&report);
        assert!(p.compute > 0.0);
        assert!(p.shuffle_disk > 0.0, "TeraSort must show disk shuffle");
        assert!(p.scheduler > 0.0);
    }

    #[test]
    fn fig7_rows_render() {
        let cluster = ClusterSpec::hydra();
        let rows = fig7(&cluster, 5);
        assert_eq!(rows.len(), 3);
        let t = fig7_table(&rows);
        assert_eq!(t.len(), 6);
        // every selected workload improves its compute time under RUPAM
        // (§IV-D: "all selected workloads have improved compute times")
        for r in &rows {
            assert!(
                r.rupam.compute < r.spark.compute * 1.35,
                "{}: RUPAM compute {} should not blow up vs Spark {}",
                r.workload,
                r.rupam.compute,
                r.spark.compute
            );
        }
    }
}
