//! Tenant-fairness head-to-head: FIFO baseline vs weighted-fair vs DRF.
//!
//! The multi-tenant stream in [`crate::multitenant`] gives every tenant
//! one job, so the allocation policy barely matters there. This
//! experiment builds the adversarial regime the Mesos fair-allocation
//! study measures: one *heavy* tenant floods the cluster with a wide
//! burst of uniform CPU tasks — many times the core count — while a
//! *light* tenant trickles small jobs in behind it. Under the FIFO
//! baseline every freed core goes to the heavy backlog (its tasks hold
//! the earliest seats), so the light jobs wait for the whole flood to
//! drain; the fair policies give the least-served tenant the first
//! kind-cycle of every dispatch pass, so the light jobs cut through at
//! near-solo speed. The stream is synthetic (plain [`AppBuilder`]
//! stages) so task widths and durations are controlled and the
//! queueing effect is not confounded by stage-DAG structure.
//!
//! The stream runs in two phases. At `t = 0` each tenant submits one
//! *pilot* job that runs at first contact: Algorithm 1 sends unknown
//! Result-stage tasks to the network queue, whose admission check
//! ignores CPU pressure and happily overcommits — ordering between
//! tenants decides nothing while both flood in on the overcommit
//! headroom. The pilots' completions write `DB_task_char`, so when the
//! *measured* wave arrives at [`WAVE_AT`] every task classifies
//! straight into the CPU queue, whose utilisation ceiling admits
//! exactly one task per freed core. That contended, one-seat-at-a-time
//! regime is where the allocation order is the whole game — and it is
//! only reachable warm, which is why the pilots exist.
//!
//! Reported per policy: Jain's index over per-tenant slowdowns, mean
//! JCT, and each tenant's slowdown against its solo baseline (the same
//! jobs alone on the same cluster at the same arrival offsets).

use rand::Rng;
use rupam::{AllocationPolicy, RupamConfig, TenantSpec};
use rupam_cluster::ClusterSpec;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::{AppBuilder, Application, DataLayout, JobStream, MergedStream, StageKind, TenantId};
use rupam_metrics::table::{secs, Table};
use rupam_simcore::time::SimTime;
use rupam_simcore::{stats, RngFactory};

use crate::harness::{run_stream_cfg, Sched};

/// Jobs the heavy tenant submits: one cold pilot plus the measured wave.
pub const HEAVY_JOBS: usize = 2;
/// Tasks per heavy job: wide enough that the wave's backlog outlives
/// every light arrival on [`contended_cluster`].
pub const HEAVY_WIDTH: usize = 120;
/// CPU giga-cycles per heavy task (~6 s on a 4 GHz core).
pub const HEAVY_COMPUTE: f64 = 24.0;
/// Jobs the light tenant submits: one cold pilot plus the trickle.
pub const LIGHT_JOBS: usize = 4;
/// Tasks per light job.
pub const LIGHT_WIDTH: usize = 8;
/// CPU giga-cycles per light task (~3 s on a 4 GHz core).
pub const LIGHT_COMPUTE: f64 = 12.0;
/// Arrival of the heavy tenant's measured wave: late enough that both
/// pilots have drained and warmed `DB_task_char` for every task index.
pub const WAVE_AT: f64 = 40.0;
/// Mean inter-arrival gap of the light tenant's trickle behind the
/// wave (seconds). Gaps are capped at twice the mean so every light
/// job lands inside the wave's backlog window, where the allocation
/// order decides who gets each freed core.
pub const LIGHT_GAP_SECS: f64 = 6.0;

/// The contended cluster the fairness runs use: small enough that the
/// heavy burst's backlog outlives the light tenant's arrivals, so the
/// dispatch order between tenants decides who waits.
pub fn contended_cluster() -> ClusterSpec {
    ClusterSpec::hydra_mix(2, 1, 1)
}

/// One single-stage burst job of `width` uniform CPU tasks. Compute
/// varies ±10% by partition index (deterministically) so the runs
/// exercise the straggler-free common path without being lockstep.
fn burst_app(name: &str, template_key: &str, width: usize, compute: f64) -> Application {
    let mut b = AppBuilder::new(name);
    let job = b.begin_job();
    let tasks = (0..width)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Generated,
            demand: TaskDemand {
                compute: compute * (0.9 + 0.2 * ((i * 7) % 11) as f64 / 10.0),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(job, "burst", template_key, StageKind::Result, vec![], tasks);
    b.build()
}

/// Tenant shares used by the fair policies: equal weights, no quotas.
/// Fairness here comes from ordering alone, so the FIFO row really is
/// the no-op baseline (weights without quotas never arm preemption).
pub fn tenant_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            weight: 1.0,
            quota: None,
        },
        TenantSpec {
            weight: 1.0,
            quota: None,
        },
    ]
}

/// The entries of the skewed stream as `(name, app, arrival, tenant)`,
/// arrival-sorted. Arrival times are seed-deterministic.
fn stream_entries(seed: u64) -> Vec<(String, Application, SimTime, TenantId)> {
    let mut arrivals = RngFactory::new(seed).stream("fairness-arrivals");
    let mut entries = Vec::new();
    // pilots: heavy#0 and light#0 run cold from t ≈ 0 and warm the DB
    // for every (template, index) key the measured jobs reuse
    for i in 0..HEAVY_JOBS {
        let name = format!("heavy#{i}");
        let app = burst_app(&name, "fairness/heavy", HEAVY_WIDTH, HEAVY_COMPUTE);
        let at = if i == 0 { 0.0 } else { WAVE_AT };
        entries.push((name, app, at, TenantId(0)));
    }
    let mut t = WAVE_AT + 5.0;
    for i in 0..LIGHT_JOBS {
        let name = format!("light#{i}");
        let app = burst_app(&name, "fairness/light", LIGHT_WIDTH, LIGHT_COMPUTE);
        let at = if i == 0 {
            1.0
        } else {
            // exponential gap via inverse CDF; 1-u keeps the log
            // argument strictly positive
            let u: f64 = arrivals.gen_range(0.0..1.0);
            t += (-LIGHT_GAP_SECS * (1.0 - u).ln()).min(2.0 * LIGHT_GAP_SECS);
            t
        };
        entries.push((name, app, at, TenantId(1)));
    }
    entries.sort_by(|a, b| a.2.total_cmp(&b.2));
    entries
        .into_iter()
        .map(|(name, app, at, tenant)| (name, app, SimTime::from_secs_f64(at), tenant))
        .collect()
}

/// Build the skewed two-tenant stream: cold pilots from both tenants
/// near `t = 0`, then tenant 0 (heavy) submits its measured wave at
/// [`WAVE_AT`] and tenant 1 (light) trickles [`LIGHT_JOBS`]` - 1`
/// small jobs in behind it with seeded exponential gaps.
pub fn build_skewed_stream(seed: u64) -> MergedStream {
    let mut stream = JobStream::new();
    for (name, app, at, tenant) in stream_entries(seed) {
        stream.push_as(name, app, DataLayout::new(), at, tenant);
    }
    stream.merge()
}

/// Solo baseline: each tenant's jobs alone on the cluster, same
/// arrival offsets. Returns mean solo JCT per tenant id.
pub fn solo_means(cluster: &ClusterSpec, seed: u64) -> Vec<f64> {
    (0..2)
        .map(|t| {
            let mut solo = JobStream::new();
            for (name, app, at, tenant) in stream_entries(seed) {
                if tenant.index() == t {
                    solo.push_as(name, app, DataLayout::new(), at, TenantId(t));
                }
            }
            let stream = solo.merge();
            let report = run_stream_cfg(
                cluster,
                &stream,
                &Sched::Rupam,
                seed,
                &rupam_exec::SimConfig::default(),
            );
            assert!(report.completed, "solo baseline must complete");
            report.jct_mean()
        })
        .collect()
}

/// The RUPAM configuration for one allocation policy over the
/// two-tenant stream.
pub fn policy_config(policy: AllocationPolicy) -> RupamConfig {
    RupamConfig {
        allocation: policy,
        tenants: tenant_specs(),
        ..RupamConfig::default()
    }
}

/// One policy's aggregate over the seeds.
pub struct FairnessRow {
    /// Scheduler label (carries the policy suffix).
    pub sched: String,
    /// Mean Jain's index over per-tenant slowdowns (size-normalised:
    /// 1.0 = contention taxed both tenants equally).
    pub jain: f64,
    /// Mean JCT across all jobs and seeds (seconds).
    pub jct_mean: f64,
    /// Mean slowdown of the heavy tenant vs its solo baseline.
    pub heavy_slowdown: f64,
    /// Mean slowdown of the light tenant vs its solo baseline.
    pub light_slowdown: f64,
    /// Mean p95 per-tenant slowdown vs solo baselines.
    pub slowdown_p95: f64,
    /// All runs completed.
    pub completed: bool,
}

/// Run the head-to-head: FIFO baseline, weighted-fair, DRF.
pub fn run(cluster: &ClusterSpec, seeds: &[u64]) -> Vec<FairnessRow> {
    let policies = [
        AllocationPolicy::FifoBaseline,
        AllocationPolicy::WeightedFair,
        AllocationPolicy::Drf,
    ];
    policies
        .iter()
        .map(|&policy| {
            let sched = Sched::RupamWith(policy_config(policy));
            let mut jains = Vec::new();
            let mut jcts = Vec::new();
            let mut heavy = Vec::new();
            let mut light = Vec::new();
            let mut slowdowns = Vec::new();
            let mut completed = true;
            for &seed in seeds {
                let stream = build_skewed_stream(seed);
                let solo = solo_means(cluster, seed);
                let report = run_stream_cfg(
                    cluster,
                    &stream,
                    &sched,
                    seed,
                    &rupam_exec::SimConfig::default(),
                );
                completed &= report.completed;
                jains.push(report.tenant_jain_slowdown(&solo));
                jcts.push(report.jct_mean());
                for (t, s) in report.tenant_slowdowns(&solo) {
                    match t.index() {
                        0 => heavy.push(s),
                        _ => light.push(s),
                    }
                }
                slowdowns.push(report.tenant_slowdown_p95(&solo));
            }
            FairnessRow {
                sched: sched.label(),
                jain: stats::mean(&jains),
                jct_mean: stats::mean(&jcts),
                heavy_slowdown: stats::mean(&heavy),
                light_slowdown: stats::mean(&light),
                slowdown_p95: stats::mean(&slowdowns),
                completed,
            }
        })
        .collect()
}

/// Render the policy comparison.
pub fn table(rows: &[FairnessRow]) -> Table {
    let mut t = Table::new(
        format!(
            "Tenant fairness — heavy {}×{} burst vs light {}×{} trickle",
            HEAVY_JOBS,
            HEAVY_WIDTH,
            LIGHT_JOBS,
            LIGHT_WIDTH
        ),
        &[
            "policy",
            "Jain slowdown",
            "mean JCT (s)",
            "heavy",
            "light",
            "p95 slowdown",
        ],
    );
    for r in rows {
        t.row(&[
            r.sched.clone(),
            format!("{:.3}", r.jain),
            secs(r.jct_mean),
            format!("{:.2}x", r.heavy_slowdown),
            format!("{:.2}x", r.light_slowdown),
            format!("{:.2}x", r.slowdown_p95),
        ]);
    }
    t
}

/// The `fairness_jain_weighted` gate value: Jain's index over
/// per-tenant slowdowns under the weighted-fair policy on the skewed
/// stream (mean over `seeds`). Simulated-time and deterministic, so
/// gate-able across machines against an absolute floor.
pub fn jain_weighted_gate(cluster: &ClusterSpec, seeds: &[u64]) -> f64 {
    let sched = Sched::RupamWith(policy_config(AllocationPolicy::WeightedFair));
    let jains: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let stream = build_skewed_stream(seed);
            let solo = solo_means(cluster, seed);
            let report = run_stream_cfg(
                cluster,
                &stream,
                &sched,
                seed,
                &rupam_exec::SimConfig::default(),
            );
            assert!(report.completed, "fairness gate stream must complete");
            report.tenant_jain_slowdown(&solo)
        })
        .collect();
    stats::mean(&jains)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_stream_is_deterministic_and_two_tenant() {
        let a = build_skewed_stream(7);
        let b = build_skewed_stream(7);
        assert_eq!(a.jobs.len(), HEAVY_JOBS + LIGHT_JOBS);
        assert_eq!(a.tenant_count(), 2);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.tenant, y.tenant);
        }
        assert_eq!(
            a.jobs.iter().filter(|j| j.tenant == TenantId(0)).count(),
            HEAVY_JOBS
        );
    }

    #[test]
    fn policy_rows_complete_and_fair_policies_report_jain() {
        let cluster = ClusterSpec::hydra();
        let rows = run(&cluster, &[1]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.completed, "{} left jobs unfinished", r.sched);
            assert!(r.jain > 0.0 && r.jain <= 1.0 + 1e-9);
            assert!(r.jct_mean > 0.0);
        }
        assert!(rows[1].sched.contains("wfair"));
        assert!(rows[2].sched.contains("drf"));
        assert_eq!(table(&rows).len(), 3);
    }
}
