//! Wall-clock microbenchmarks of the scheduler hot path
//! (`rupam-bench perf`).
//!
//! Three measurements, at three cluster sizes, for both dispatcher
//! paths (incremental vs from-scratch rebuild):
//!
//! * **offer rounds** — p50/p95 latency of `Scheduler::offer_round`
//!   over an 8-tenant job stream;
//! * **end-to-end stream** — wall-clock of the whole `--jobs 8`
//!   simulation;
//! * **DB lookups** — `DB_task_char` read throughput, single-threaded
//!   and with 4 concurrent readers over the sharded store.
//!
//! Results land in `BENCH_scheduler.json`. The regression gate compares
//! *dimensionless speedup ratios* (incremental vs rebuild on the same
//! machine, same run), so the committed baseline stays meaningful
//! across hardware.

use std::fmt::Write as _;
use std::time::Instant;

use rupam::config::RupamConfig;
use rupam::db::{TaskCharDb, TaskKey};
use rupam::RupamScheduler;
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{Application, JobId, Stage, StageId};
use rupam_exec::scheduler::{Command, OfferInput, Scheduler};
use rupam_exec::{simulate_stream, SimConfig, StreamInput};
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use crate::multitenant::{build_stream, MEAN_GAP_SECS, TENANTS};

/// Maximum tolerated drop of any gate ratio vs the committed baseline.
pub const GATE_TOLERANCE: f64 = 0.25;

/// Absolute ceiling for `engine_event_overhead`: attaching bus
/// subscribers may add at most 5% to the end-to-end stream wall-clock
/// (which bounds the per-offer-round overhead as well). Unlike the
/// speedup keys, overhead gates on *this run's* absolute value — higher
/// is worse, and the committed baseline is irrelevant.
pub const ENGINE_OVERHEAD_CEILING: f64 = 1.05;

/// Absolute ceiling for `offer_scaling_256_over_64`: quadrupling the
/// cluster (hydra64 → hydra256) may at most double the median
/// offer-round latency on the incremental path. This is the scalability
/// contract of the sharded node-queue cache — O(changed) refreshes and
/// bound-pruned shard scans, not O(nodes) rebuilds. Gates on this run's
/// absolute value, like [`ENGINE_OVERHEAD_CEILING`].
pub const OFFER_SCALING_CEILING: f64 = 2.0;

/// Absolute ceiling for `serve_dispatch_p99_us_hydra64`: with
/// event-driven offers and the persistent offer state, a dispatchable
/// task on the 64-worker fleet launches within the coalescing window
/// plus one execution wave — p99 stays well under half a second.
pub const SERVE_DISPATCH_CEILING_HYDRA64_US: f64 = 500_000.0;

/// Absolute ceiling for `serve_dispatch_p99_us_hydra256` (and the
/// fallback for unrecognised shapes): the saturated 12.8k-task backlog
/// still queues tasks behind executor memory, but the incremental serve
/// path must keep p99 under two seconds absolute — the pre-incremental
/// driver sat at ~46 s here, and an actual livelock pins p99 at the
/// 300 s `max_wall` abort. Gates on this run's absolute value; like the
/// other wall-clock serve rows it is absent from `--quick` runs.
pub const SERVE_DISPATCH_CEILING_HYDRA256_US: f64 = 2_000_000.0;

/// Absolute floor for `fairness_jain_weighted`: Jain's index over
/// per-tenant slowdowns under the weighted-fair policy on the skewed
/// two-tenant stream (see [`crate::fairness`]). Simulated-time and
/// deterministic, so gate-able across machines. The FIFO baseline sits
/// near 0.81 on the same stream, so holding the floor also certifies
/// the allocation order is actually engaged, not silently bypassed.
pub const FAIRNESS_JAIN_FLOOR: f64 = 0.85;

/// The dispatch-latency ceiling for a `serve_dispatch_p99_us_*` gate
/// key, selected by fleet-shape suffix.
pub fn serve_dispatch_ceiling_us(key: &str) -> f64 {
    if key.ends_with("_hydra64") {
        SERVE_DISPATCH_CEILING_HYDRA64_US
    } else {
        SERVE_DISPATCH_CEILING_HYDRA256_US
    }
}

/// Wraps a scheduler and records the wall-clock cost of every offer
/// round.
struct TimingScheduler<S> {
    inner: S,
    rounds_us: Vec<u64>,
}

impl<S: Scheduler> TimingScheduler<S> {
    fn new(inner: S) -> Self {
        TimingScheduler {
            inner,
            rounds_us: Vec::new(),
        }
    }
}

impl<S: Scheduler> Scheduler for TimingScheduler<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize {
        self.inner.executor_memory(cluster, node)
    }

    fn decision_cost(&self) -> SimDuration {
        self.inner.decision_cost()
    }

    fn on_app_start(&mut self, app: &Application, cluster: &ClusterSpec) {
        self.inner.on_app_start(app, cluster);
    }

    fn on_job_submitted(&mut self, job: JobId, stages: &[StageId], now: SimTime) {
        self.inner.on_job_submitted(job, stages, now);
    }

    fn on_stage_ready(&mut self, stage: &Stage, now: SimTime) {
        self.inner.on_stage_ready(stage, now);
    }

    fn on_task_finished(&mut self, record: &TaskRecord, now: SimTime) {
        self.inner.on_task_finished(record, now);
    }

    fn on_task_failed(
        &mut self,
        task: rupam_dag::TaskRef,
        node: NodeId,
        outcome: AttemptOutcome,
        now: SimTime,
    ) {
        self.inner.on_task_failed(task, node, outcome, now);
    }

    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let t = Instant::now();
        let out = self.inner.offer_round(input);
        self.rounds_us.push(t.elapsed().as_micros() as u64);
        out
    }

    fn audit_round(&self, input: &OfferInput<'_>) -> Vec<String> {
        self.inner.audit_round(input)
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        self.inner.on_heartbeat(now);
    }
}

/// One dispatcher path's numbers on one cluster.
#[derive(Clone, Copy, Debug)]
pub struct PathTiming {
    /// End-to-end stream simulation wall-clock, milliseconds.
    pub e2e_ms: f64,
    /// Median offer-round latency, microseconds.
    pub offer_p50_us: f64,
    /// 95th-percentile offer-round latency, microseconds.
    pub offer_p95_us: f64,
    /// Total scheduler wall-clock across all offer rounds, milliseconds
    /// — the cost the incremental state machinery actually attacks.
    pub offer_total_ms: f64,
    /// Offer rounds executed.
    pub rounds: usize,
    /// Simulated makespan (equivalence check across paths), seconds.
    pub makespan_secs: f64,
}

/// Incremental vs rebuild on one cluster shape.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Label used in the JSON (`hydra12`, …).
    pub label: String,
    /// Node count.
    pub nodes: usize,
    /// Jobs in the stream.
    pub jobs: usize,
    /// The incremental (default) path.
    pub incremental: PathTiming,
    /// The rebuild reference path.
    pub rebuild: PathTiming,
}

impl ClusterResult {
    /// Scheduler-time speedup of incremental over rebuild: the ratio of
    /// total offer-round wall-clock. This is the gate's headline — it
    /// isolates the dispatch path the optimisation targets from engine
    /// physics (task execution, event calendar) that both runs share.
    pub fn offer_speedup(&self) -> f64 {
        self.rebuild.offer_total_ms / self.incremental.offer_total_ms
    }

    /// End-to-end wall-clock speedup of incremental over rebuild
    /// (includes the shared engine cost, so it lower-bounds
    /// [`ClusterResult::offer_speedup`]).
    pub fn speedup(&self) -> f64 {
        self.rebuild.e2e_ms / self.incremental.e2e_ms
    }
}

/// DB lookup throughput.
#[derive(Clone, Copy, Debug)]
pub struct DbThroughput {
    /// Single-threaded reads per second.
    pub ops_per_sec_1t: f64,
    /// Aggregate reads per second across 4 concurrent readers.
    pub ops_per_sec_4t: f64,
}

/// Everything `rupam-bench perf` measures.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Per-cluster incremental-vs-rebuild comparisons.
    pub clusters: Vec<ClusterResult>,
    /// Sharded-store read throughput.
    pub db: DbThroughput,
    /// RUPAM resilience ratios per chaos scenario: healthy over
    /// degraded mean makespan (simulated time — deterministic, so
    /// gate-able across machines). `(scenario label, ratio)`.
    pub degraded: Vec<(String, f64)>,
    /// Event-bus dispatch overhead: loaded-over-plain e2e wall-clock
    /// ratio (see [`bench_event_overhead`]); gated against
    /// [`ENGINE_OVERHEAD_CEILING`].
    pub event_overhead: f64,
    /// Live-service sustained-load results (empty on `--quick` runs —
    /// wall-clock serve rows are too noisy for CI smoke machines, and
    /// [`regressions`] tolerates their absence).
    pub serve: Vec<crate::serve::ServeBenchResult>,
    /// Spot-tier Pareto ratios (`(label, ratio)` — see
    /// [`crate::spot::spot_gate`]): simulated-time, deterministic,
    /// gate-able across machines like the degraded rows.
    pub spot: Vec<(String, f64)>,
    /// Jain's index over per-tenant slowdowns under weighted-fair
    /// allocation (see [`crate::fairness::jain_weighted_gate`]); gated
    /// against [`FAIRNESS_JAIN_FLOOR`].
    pub fairness_jain: f64,
    /// Gang-admission no-op certificate: 1.0 iff enabling
    /// `gang_admission` on a gang-free workload leaves the decision
    /// trace digest unchanged (see [`bench_gang_noop`]).
    pub gang_noop: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

fn time_stream(cluster: &ClusterSpec, jobs: usize, seed: u64, incremental: bool) -> PathTiming {
    // 8 tenants = the 4-workload tenant mix, twice
    let tenants: Vec<_> = TENANTS.iter().cycle().take(jobs).copied().collect();
    let stream = build_stream(cluster, &tenants, MEAN_GAP_SECS, seed);
    let config = SimConfig::default();
    let input = StreamInput {
        cluster,
        stream: &stream,
        config: &config,
        seed,
    };
    let mut sched = TimingScheduler::new(RupamScheduler::new(RupamConfig {
        incremental_queues: incremental,
        ..RupamConfig::default()
    }));
    let t = Instant::now();
    let report = simulate_stream(&input, &mut sched);
    let e2e_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(report.completed, "perf stream must complete");
    let mut rounds = sched.rounds_us;
    let total_us: u64 = rounds.iter().sum();
    rounds.sort_unstable();
    PathTiming {
        e2e_ms,
        offer_p50_us: percentile(&rounds, 50.0),
        offer_p95_us: percentile(&rounds, 95.0),
        offer_total_ms: total_us as f64 / 1e3,
        rounds: rounds.len(),
        makespan_secs: report.makespan.as_secs_f64(),
    }
}

/// Wall-clock repeats per path; the fastest run is reported. Min-of-N
/// is the standard low-noise estimator for wall-clock microbenchmarks —
/// scheduling decisions are deterministic, so repeats only differ in
/// timer noise, and the gate ratios stay stable across runs.
const REPEATS: usize = 3;

fn best_of(cluster: &ClusterSpec, jobs: usize, seed: u64, incremental: bool) -> PathTiming {
    let mut best = time_stream(cluster, jobs, seed, incremental);
    for _ in 1..REPEATS {
        let t = time_stream(cluster, jobs, seed, incremental);
        assert_eq!(
            t.makespan_secs, best.makespan_secs,
            "repeat diverged — the simulation must be deterministic"
        );
        if t.offer_total_ms < best.offer_total_ms {
            let e2e = best.e2e_ms;
            best = t;
            best.e2e_ms = e2e.min(t.e2e_ms);
        } else {
            best.e2e_ms = best.e2e_ms.min(t.e2e_ms);
        }
    }
    best
}

/// A subscriber that does nothing; its only job is to make the bus
/// dispatch loop do real work per published event.
struct NoopSub(&'static str);

impl rupam_exec::Subscriber for NoopSub {
    fn name(&self) -> &'static str {
        self.0
    }
    fn stage(&self) -> rupam_exec::BusStage {
        rupam_exec::BusStage::Statistics
    }
    fn on_event(&mut self, _ctx: &rupam_exec::EventCtx, _event: &rupam_exec::EngineEvent) {}
}

/// Measure the event-bus dispatch overhead: best-of-[`REPEATS`]
/// end-to-end wall-clock of the same job stream, with four extra no-op
/// subscribers attached versus plain, as a ratio (1.0 = free).
pub fn bench_event_overhead(cluster: &ClusterSpec, jobs: usize, seed: u64) -> f64 {
    let tenants: Vec<_> = TENANTS.iter().cycle().take(jobs).copied().collect();
    let stream = build_stream(cluster, &tenants, MEAN_GAP_SECS, seed);
    let config = SimConfig::default();
    let run = |with_subs: bool| -> f64 {
        let input = StreamInput {
            cluster,
            stream: &stream,
            config: &config,
            seed,
        };
        let subs: Vec<Box<dyn rupam_exec::Subscriber>> = if with_subs {
            ["ovh-a", "ovh-b", "ovh-c", "ovh-d"]
                .into_iter()
                .map(|n| Box::new(NoopSub(n)) as Box<dyn rupam_exec::Subscriber>)
                .collect()
        } else {
            Vec::new()
        };
        let mut sched = RupamScheduler::new(RupamConfig::default());
        let t = Instant::now();
        let (report, _) = rupam_exec::simulate_stream_observed_with(
            &input,
            &mut sched,
            &rupam_exec::SimOptions::default(),
            subs,
        );
        assert!(report.completed, "overhead stream must complete");
        t.elapsed().as_secs_f64() * 1e3
    };
    // interleave the repeats so slow-machine drift hits both sides alike
    let mut plain = f64::INFINITY;
    let mut loaded = f64::INFINITY;
    for _ in 0..REPEATS {
        plain = plain.min(run(false));
        loaded = loaded.min(run(true));
    }
    loaded / plain
}

/// The `gang_admission_noop` gate value: enabling gang admission on a
/// workload with no `gang: true` stages must leave the decision trace
/// byte-identical to the default configuration — the all-or-nothing
/// machinery may only act when a stage asks for it. Binary and
/// machine-independent (simulated-time digests), like the serve replay
/// oracle: 1.0 on digest equality, 0.0 otherwise.
pub fn bench_gang_noop() -> f64 {
    let cluster = ClusterSpec::hydra();
    let opts = rupam_exec::SimOptions {
        trace_capacity: Some(0),
        audit: None,
    };
    let config = SimConfig::default();
    let gang_cfg = RupamConfig {
        gang_admission: true,
        ..RupamConfig::default()
    };
    let seed = 707;
    let w = rupam_workloads::Workload::TeraSort;
    let (_, gang) = crate::harness::run_workload_observed_cfg(
        &cluster,
        w,
        &crate::harness::Sched::RupamWith(gang_cfg),
        seed,
        &opts,
        &config,
    );
    let (_, plain) = crate::harness::run_workload_observed_cfg(
        &cluster,
        w,
        &crate::harness::Sched::Rupam,
        seed,
        &opts,
        &config,
    );
    let d = |o: rupam_exec::SimObservation| o.trace.expect("digest-only trace requested").digest();
    if d(gang) == d(plain) {
        1.0
    } else {
        0.0
    }
}

/// Compare the two dispatcher paths on one cluster shape.
pub fn bench_cluster(label: &str, cluster: ClusterSpec, jobs: usize, seed: u64) -> ClusterResult {
    let incremental = best_of(&cluster, jobs, seed, true);
    let rebuild = best_of(&cluster, jobs, seed, false);
    assert_eq!(
        incremental.makespan_secs, rebuild.makespan_secs,
        "{label}: the two paths diverged — decision identity broken"
    );
    ClusterResult {
        label: label.to_string(),
        nodes: cluster.len(),
        jobs,
        incremental,
        rebuild,
    }
}

/// Measure `DB_task_char` read throughput over a populated store.
pub fn bench_db(ops: usize) -> DbThroughput {
    let db = TaskCharDb::new();
    let keys: Vec<TaskKey> = (0..1024)
        .map(|i| TaskKey::new(format!("perf/t{}", i % 64), i))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        db.update(*k, |c| {
            c.runs = i as u32;
            c.peak_mem = ByteSize::mib(64 + (i as u64 % 512));
        });
    }
    db.flush();

    let t = Instant::now();
    let mut hits = 0usize;
    for i in 0..ops {
        if db.read(&keys[i % keys.len()]).is_some() {
            hits += 1;
        }
    }
    let ops_per_sec_1t = ops as f64 / t.elapsed().as_secs_f64();
    assert_eq!(hits, ops, "populated keys must all hit");

    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..4 {
            let db = &db;
            let keys = &keys;
            scope.spawn(move || {
                for i in 0..ops / 4 {
                    std::hint::black_box(db.read(&keys[(w * 7 + i * 13) % keys.len()]));
                }
            });
        }
    });
    let ops_per_sec_4t = (ops / 4 * 4) as f64 / t.elapsed().as_secs_f64();

    DbThroughput {
        ops_per_sec_1t,
        ops_per_sec_4t,
    }
}

/// Run the full suite. `quick` trims the mid-size cluster and the DB
/// op count for CI smoke runs.
pub fn run(quick: bool) -> PerfReport {
    let mut shapes = vec![("hydra12", ClusterSpec::hydra())];
    if !quick {
        shapes.push(("hydra32", ClusterSpec::hydra_mix(16, 8, 8)));
    }
    shapes.push(("hydra64", ClusterSpec::hydra_mix(48, 8, 8)));
    // hydra256 runs even in --quick: it feeds the offer_scaling gate row
    shapes.push(("hydra256", ClusterSpec::hydra_mix(192, 32, 32)));
    if !quick {
        shapes.push(("hydra1k", ClusterSpec::hydra_mix(768, 128, 128)));
    }

    let clusters = shapes
        .into_iter()
        .map(|(label, cluster)| {
            eprintln!("perf: {label} ({} nodes, 8 jobs) …", cluster.len());
            bench_cluster(label, cluster, 8, 42)
        })
        .collect();
    let db_ops = if quick { 200_000 } else { 1_000_000 };
    eprintln!("perf: DB lookup throughput ({db_ops} ops) …");
    let db = bench_db(db_ops);
    eprintln!("perf: degraded resilience (chaos scenarios) …");
    let degraded = crate::degraded::rupam_resilience(
        &ClusterSpec::hydra(),
        rupam_workloads::Workload::TeraSort,
        &[42],
    );
    eprintln!("perf: event-bus dispatch overhead …");
    let event_overhead = bench_event_overhead(&ClusterSpec::hydra(), 8, 42);
    eprintln!("perf: spot-tier cost/JCT ratios …");
    // two seeds: single-seed spot ratios are dominated by one price
    // path's preemption luck
    let spot = crate::spot::spot_gate(&ClusterSpec::hydra(), &crate::harness::SEEDS[..2]);
    eprintln!("perf: tenant fairness (weighted-fair Jain) …");
    let f_seeds = if quick {
        &crate::harness::SEEDS[..1]
    } else {
        &crate::harness::SEEDS[..3]
    };
    let fairness_jain =
        crate::fairness::jain_weighted_gate(&crate::fairness::contended_cluster(), f_seeds);
    eprintln!("perf: gang-admission no-op digest …");
    let gang_noop = bench_gang_noop();
    let serve = if quick {
        Vec::new()
    } else {
        crate::serve::run()
    };
    PerfReport {
        clusters,
        db,
        degraded,
        event_overhead,
        serve,
        spot,
        fairness_jain,
        gang_noop,
    }
}

/// Render the report as the committed `BENCH_scheduler.json` document.
/// Hand-rolled (the workspace carries no JSON dependency); gate keys are
/// globally unique so the checker can scan for them textually.
pub fn to_json(r: &PerfReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"scheduler\",");
    let _ = writeln!(s, "  \"tool\": \"rupam-bench perf\",");
    let _ = writeln!(s, "  \"clusters\": {{");
    for (i, c) in r.clusters.iter().enumerate() {
        let comma = if i + 1 < r.clusters.len() { "," } else { "" };
        let path = |p: &PathTiming| {
            format!(
                "{{\"e2e_ms\": {:.2}, \"offer_p50_us\": {:.1}, \"offer_p95_us\": {:.1}, \"offer_total_ms\": {:.2}, \"rounds\": {}, \"makespan_secs\": {:.3}}}",
                p.e2e_ms, p.offer_p50_us, p.offer_p95_us, p.offer_total_ms, p.rounds, p.makespan_secs
            )
        };
        let _ = writeln!(s, "    \"{}\": {{", c.label);
        let _ = writeln!(s, "      \"nodes\": {}, \"jobs\": {},", c.nodes, c.jobs);
        let _ = writeln!(s, "      \"incremental\": {},", path(&c.incremental));
        let _ = writeln!(s, "      \"rebuild\": {}", path(&c.rebuild));
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"db\": {{");
    let _ = writeln!(
        s,
        "    \"lookup_ops_per_sec_1t\": {:.0},",
        r.db.ops_per_sec_1t
    );
    let _ = writeln!(
        s,
        "    \"lookup_ops_per_sec_4t\": {:.0}",
        r.db.ops_per_sec_4t
    );
    let _ = writeln!(s, "  }},");
    if !r.serve.is_empty() {
        let _ = writeln!(s, "  \"serve\": {{");
        for (i, sv) in r.serve.iter().enumerate() {
            let comma = if i + 1 < r.serve.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    \"{}\": {{\"workers\": {}, \"tasks\": {}, \"jobs_per_sec\": {:.2}, \"dispatch_p50_us\": {}, \"dispatch_p99_us\": {}, \"max_pending\": {}, \"offer_rounds\": {}, \"offer_p50_us\": {}, \"offer_p95_us\": {}, \"stale_launch_drops\": {}, \"dead_launch_drops\": {}, \"lost\": {}, \"clean\": {}}}{comma}",
                sv.label, sv.workers, sv.tasks, sv.jobs_per_sec, sv.dispatch_p50_us,
                sv.dispatch_p99_us, sv.max_pending, sv.offer_rounds, sv.offer_p50_us,
                sv.offer_p95_us, sv.stale_launch_drops, sv.dead_launch_drops, sv.lost, sv.clean
            );
        }
        let _ = writeln!(s, "  }},");
    }
    let _ = writeln!(s, "  \"gate\": {{");
    for c in &r.clusters {
        let _ = writeln!(
            s,
            "    \"offer_speedup_{}\": {:.3},",
            c.label,
            c.offer_speedup()
        );
        let _ = writeln!(s, "    \"speedup_{}\": {:.3},", c.label, c.speedup());
    }
    for (label, ratio) in &r.degraded {
        let _ = writeln!(s, "    \"degraded_resilience_{label}\": {ratio:.3},");
    }
    for (label, ratio) in &r.spot {
        let _ = writeln!(s, "    \"spot_{label}\": {ratio:.3},");
    }
    // near-constant offer latency across a 4× node-count jump is the
    // sharded cache's scalability contract; only emitted when the run
    // measured both shapes
    let p50 = |label: &str| {
        r.clusters
            .iter()
            .find(|c| c.label == label)
            .map(|c| c.incremental.offer_p50_us)
    };
    if let (Some(big), Some(small)) = (p50("hydra256"), p50("hydra64")) {
        if small > 0.0 {
            let _ = writeln!(s, "    \"offer_scaling_256_over_64\": {:.3},", big / small);
        }
    }
    for sv in &r.serve {
        let _ = writeln!(
            s,
            "    \"serve_replay_digest_match_{}\": {:.1},",
            sv.label,
            if sv.replay_match && sv.clean && sv.lost == 0 {
                1.0
            } else {
                0.0
            }
        );
        let _ = writeln!(
            s,
            "    \"serve_dispatch_p99_us_{}\": {:.0},",
            sv.label, sv.dispatch_p99_us as f64
        );
    }
    if let Some(big) = r.serve.iter().find(|sv| sv.label == "hydra256") {
        let _ = writeln!(
            s,
            "    \"serve_max_pending_hydra256\": {:.0},",
            big.max_pending as f64
        );
        // throughput floor under the deepest backlog — ratio-gated
        // against the committed baseline like the speedup rows
        let _ = writeln!(
            s,
            "    \"serve_jobs_per_sec_hydra256\": {:.2},",
            big.jobs_per_sec
        );
    }
    let _ = writeln!(
        s,
        "    \"fairness_jain_weighted\": {:.3},",
        r.fairness_jain
    );
    let _ = writeln!(s, "    \"gang_admission_noop\": {:.1},", r.gang_noop);
    let _ = writeln!(s, "    \"engine_event_overhead\": {:.3},", r.event_overhead);
    let _ = writeln!(
        s,
        "    \"db_4t_over_1t\": {:.3}",
        r.db.ops_per_sec_4t / r.db.ops_per_sec_1t
    );
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

/// Extract the number following `"key":` anywhere in `json`. Gate keys
/// are globally unique in the document, so a textual scan suffices.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = json.find(&pat)? + pat.len();
    let rest = json[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The gate keys present in a report document (everything under
/// `"gate"` whose name starts with `speedup_`, `db_` or `degraded_`).
pub fn gate_keys(json: &str) -> Vec<String> {
    let Some(gate) = json.find("\"gate\"") else {
        return Vec::new();
    };
    json[gate..]
        .split('"')
        .filter(|k| {
            k.starts_with("speedup_")
                || k.starts_with("offer_speedup_")
                || k.starts_with("db_")
                || k.starts_with("degraded_")
                || k.starts_with("engine_")
                || k.starts_with("offer_scaling_")
                || k.starts_with("serve_")
                || k.starts_with("spot_")
                || k.starts_with("fairness_")
                || k.starts_with("gang_")
        })
        .map(|k| k.to_string())
        .collect()
}

/// Compare a fresh report against the committed baseline. Returns the
/// regressions (key, fresh, baseline) exceeding [`GATE_TOLERANCE`].
/// Only keys present in *both* documents are compared, so a `--quick`
/// run checks cleanly against a full baseline.
pub fn regressions(fresh: &str, baseline: &str) -> Vec<(String, f64, f64)> {
    let mut bad = Vec::new();
    for key in gate_keys(fresh) {
        // overhead keys gate on an absolute ceiling: higher is worse,
        // and this run's value alone decides (the baseline column
        // reports the ceiling so the failure message stays readable)
        if key.starts_with("engine_") {
            if let Some(f) = extract_number(fresh, &key) {
                if f > ENGINE_OVERHEAD_CEILING {
                    bad.push((key, f, ENGINE_OVERHEAD_CEILING));
                }
            }
            continue;
        }
        if key.starts_with("offer_scaling_") {
            if let Some(f) = extract_number(fresh, &key) {
                if f > OFFER_SCALING_CEILING {
                    bad.push((key, f, OFFER_SCALING_CEILING));
                }
            }
            continue;
        }
        // serve wall-clock latency gates on an absolute ceiling; the
        // remaining serve_ rows (digest match, max pending) fall through
        // to the ratio gate. All serve rows are simply absent on --quick
        // runs, which the per-key iteration over `fresh` skips cleanly.
        if key.starts_with("serve_dispatch_") {
            if let Some(f) = extract_number(fresh, &key) {
                let ceiling = serve_dispatch_ceiling_us(&key);
                if f > ceiling {
                    bad.push((key, f, ceiling));
                }
            }
            continue;
        }
        // fairness gates on an absolute floor: weighted-fair must keep
        // Jain's slowdown index above the floor on the skewed stream,
        // regardless of the committed baseline (higher is better, and
        // the value is deterministic simulated time)
        if key.starts_with("fairness_") {
            if let Some(f) = extract_number(fresh, &key) {
                if f < FAIRNESS_JAIN_FLOOR {
                    bad.push((key, f, FAIRNESS_JAIN_FLOOR));
                }
            }
            continue;
        }
        // gang admission must be a decision no-op on gang-free
        // workloads — binary and machine-independent, like the serve
        // replay oracle below
        if key.starts_with("gang_") {
            if let Some(f) = extract_number(fresh, &key) {
                if f < 1.0 {
                    bad.push((key, f, 1.0));
                }
            }
            continue;
        }
        // the replay oracle is binary and machine-independent: anything
        // but 1.0 means the live run's decisions were not reproducible,
        // regardless of what the baseline says
        if key.starts_with("serve_replay_") {
            if let Some(f) = extract_number(fresh, &key) {
                if f < 1.0 {
                    bad.push((key, f, 1.0));
                }
            }
            continue;
        }
        let (Some(f), Some(b)) = (extract_number(fresh, &key), extract_number(baseline, &key))
        else {
            continue;
        };
        if f < b * (1.0 - GATE_TOLERANCE) {
            bad.push((key, f, b));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_scans_json() {
        let doc =
            "{\n  \"gate\": {\n    \"speedup_hydra64\": 2.417,\n    \"db_4t_over_1t\": 3.1\n  }\n}";
        assert_eq!(extract_number(doc, "speedup_hydra64"), Some(2.417));
        assert_eq!(extract_number(doc, "db_4t_over_1t"), Some(3.1));
        assert_eq!(extract_number(doc, "missing"), None);
        assert_eq!(
            gate_keys(doc),
            vec!["speedup_hydra64".to_string(), "db_4t_over_1t".to_string()]
        );
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let baseline = "{\"gate\": {\"speedup_hydra64\": 2.0, \"db_4t_over_1t\": 3.0}}";
        let ok = "{\"gate\": {\"speedup_hydra64\": 1.6, \"db_4t_over_1t\": 2.4}}";
        assert!(
            regressions(ok, baseline).is_empty(),
            "25% drop is tolerated"
        );
        let bad = "{\"gate\": {\"speedup_hydra64\": 1.4, \"db_4t_over_1t\": 3.0}}";
        let r = regressions(bad, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "speedup_hydra64");
        // a quick run missing a key is not a regression
        let partial = "{\"gate\": {\"db_4t_over_1t\": 2.9}}";
        assert!(regressions(partial, baseline).is_empty());
    }

    #[test]
    fn db_bench_reads_back_all_keys() {
        let t = bench_db(5_000);
        assert!(t.ops_per_sec_1t > 0.0 && t.ops_per_sec_4t > 0.0);
    }

    #[test]
    fn report_serialises_with_gate_block() {
        let path = PathTiming {
            e2e_ms: 100.0,
            offer_p50_us: 10.0,
            offer_p95_us: 25.0,
            offer_total_ms: 20.0,
            rounds: 1000,
            makespan_secs: 500.0,
        };
        let r = PerfReport {
            clusters: vec![ClusterResult {
                label: "hydra12".into(),
                nodes: 12,
                jobs: 8,
                incremental: path,
                rebuild: PathTiming {
                    e2e_ms: 250.0,
                    offer_total_ms: 60.0,
                    ..path
                },
            }],
            db: DbThroughput {
                ops_per_sec_1t: 1e6,
                ops_per_sec_4t: 3e6,
            },
            degraded: vec![("crash1".into(), 0.875)],
            event_overhead: 1.012,
            serve: vec![crate::serve::ServeBenchResult {
                label: "hydra64".into(),
                workers: 64,
                tasks: 3072,
                jobs_per_sec: 120.0,
                dispatch_p50_us: 9_000,
                dispatch_p99_us: 210_000,
                max_pending: 2_400,
                offer_rounds: 5_000,
                offer_p50_us: 80,
                offer_p95_us: 400,
                stale_launch_drops: 2,
                dead_launch_drops: 1,
                replay_match: true,
                lost: 0,
                clean: true,
            }],
            spot: vec![("resilience".into(), 1.08), ("cost_ratio".into(), 1.02)],
            fairness_jain: 0.917,
            gang_noop: 1.0,
        };
        let json = to_json(&r);
        assert_eq!(extract_number(&json, "speedup_hydra12"), Some(2.5));
        assert_eq!(extract_number(&json, "fairness_jain_weighted"), Some(0.917));
        assert_eq!(extract_number(&json, "gang_admission_noop"), Some(1.0));
        assert!(gate_keys(&json).contains(&"fairness_jain_weighted".to_string()));
        assert!(gate_keys(&json).contains(&"gang_admission_noop".to_string()));
        assert_eq!(extract_number(&json, "offer_speedup_hydra12"), Some(3.0));
        assert_eq!(extract_number(&json, "lookup_ops_per_sec_1t"), Some(1e6));
        assert_eq!(
            extract_number(&json, "degraded_resilience_crash1"),
            Some(0.875)
        );
        assert!(gate_keys(&json).contains(&"degraded_resilience_crash1".to_string()));
        assert_eq!(extract_number(&json, "engine_event_overhead"), Some(1.012));
        assert!(gate_keys(&json).contains(&"engine_event_overhead".to_string()));
        assert_eq!(extract_number(&json, "spot_resilience"), Some(1.08));
        assert_eq!(extract_number(&json, "spot_cost_ratio"), Some(1.02));
        assert!(gate_keys(&json).contains(&"spot_resilience".to_string()));
        assert!(gate_keys(&json).contains(&"spot_cost_ratio".to_string()));
        assert_eq!(
            extract_number(&json, "serve_replay_digest_match_hydra64"),
            Some(1.0)
        );
        assert_eq!(
            extract_number(&json, "serve_dispatch_p99_us_hydra64"),
            Some(210_000.0)
        );
        assert!(gate_keys(&json).contains(&"serve_replay_digest_match_hydra64".to_string()));
        assert_eq!(extract_number(&json, "offer_rounds"), Some(5000.0));
        assert_eq!(extract_number(&json, "stale_launch_drops"), Some(2.0));
        assert_eq!(extract_number(&json, "dead_launch_drops"), Some(1.0));
        // no hydra256 entry → no max-pending / jobs-per-sec rows
        assert_eq!(extract_number(&json, "serve_max_pending_hydra256"), None);
        assert_eq!(extract_number(&json, "serve_jobs_per_sec_hydra256"), None);
    }

    #[test]
    fn serve_rows_gate_correctly_and_tolerate_absence() {
        let baseline = "{\"gate\": {\"serve_replay_digest_match_hydra64\": 1.0, \
                        \"serve_dispatch_p99_us_hydra64\": 100000, \
                        \"serve_jobs_per_sec_hydra256\": 14.0, \
                        \"serve_max_pending_hydra256\": 11000}}";
        // a --quick run carries no serve rows at all → clean
        let quick = "{\"gate\": {\"speedup_hydra64\": 99.0}}";
        assert!(regressions(quick, baseline).is_empty());
        // digest match is absolute: 0.0 fails even against an empty baseline
        let broken = "{\"gate\": {\"serve_replay_digest_match_hydra64\": 0.0}}";
        let r = regressions(broken, "{\"gate\": {}}");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].2, 1.0);
        // dispatch gates on the per-shape absolute ceiling, not the baseline
        let slow = "{\"gate\": {\"serve_dispatch_p99_us_hydra64\": 600000}}";
        let r = regressions(slow, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].2, SERVE_DISPATCH_CEILING_HYDRA64_US);
        let ok64 = "{\"gate\": {\"serve_dispatch_p99_us_hydra64\": 120000}}";
        assert!(regressions(ok64, baseline).is_empty());
        // the big fleet gets the looser 2 s bound — a value past the
        // hydra64 ceiling but under 2 s is fine on hydra256
        let ok256 = "{\"gate\": {\"serve_dispatch_p99_us_hydra256\": 1500000}}";
        assert!(regressions(ok256, baseline).is_empty());
        let slow256 = "{\"gate\": {\"serve_dispatch_p99_us_hydra256\": 46000000}}";
        let r = regressions(slow256, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].2, SERVE_DISPATCH_CEILING_HYDRA256_US);
        // throughput is a ratio row: a real collapse is flagged
        let slow_jobs = "{\"gate\": {\"serve_jobs_per_sec_hydra256\": 1.4}}";
        let r = regressions(slow_jobs, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "serve_jobs_per_sec_hydra256");
        // max-pending is a ratio row: a real collapse is flagged
        let shallow = "{\"gate\": {\"serve_max_pending_hydra256\": 4000}}";
        let r = regressions(shallow, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "serve_max_pending_hydra256");
    }

    #[test]
    fn offer_scaling_row_emitted_when_both_shapes_present() {
        let path = |p50: f64| PathTiming {
            e2e_ms: 100.0,
            offer_p50_us: p50,
            offer_p95_us: p50 * 2.0,
            offer_total_ms: 20.0,
            rounds: 1000,
            makespan_secs: 500.0,
        };
        let cluster = |label: &str, nodes: usize, p50: f64| ClusterResult {
            label: label.into(),
            nodes,
            jobs: 8,
            incremental: path(p50),
            rebuild: path(p50 * 3.0),
        };
        let mut r = PerfReport {
            clusters: vec![cluster("hydra64", 64, 4.0), cluster("hydra256", 256, 6.0)],
            db: DbThroughput {
                ops_per_sec_1t: 1e6,
                ops_per_sec_4t: 3e6,
            },
            degraded: Vec::new(),
            event_overhead: 1.0,
            serve: Vec::new(),
            spot: Vec::new(),
            fairness_jain: 0.9,
            gang_noop: 1.0,
        };
        let json = to_json(&r);
        assert_eq!(
            extract_number(&json, "offer_scaling_256_over_64"),
            Some(1.5)
        );
        assert!(gate_keys(&json).contains(&"offer_scaling_256_over_64".to_string()));
        // a run without hydra256 (e.g. a trimmed local loop) omits the row
        r.clusters.pop();
        let json = to_json(&r);
        assert_eq!(extract_number(&json, "offer_scaling_256_over_64"), None);
    }

    #[test]
    fn offer_scaling_gates_on_absolute_ceiling() {
        let baseline = "{\"gate\": {}}";
        let ok = "{\"gate\": {\"offer_scaling_256_over_64\": 1.7}}";
        assert!(regressions(ok, baseline).is_empty());
        let bad = "{\"gate\": {\"offer_scaling_256_over_64\": 2.3}}";
        let r = regressions(bad, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "offer_scaling_256_over_64");
        assert_eq!(r[0].2, OFFER_SCALING_CEILING);
    }

    #[test]
    fn fairness_gates_on_absolute_floor() {
        let baseline = "{\"gate\": {\"fairness_jain_weighted\": 0.950}}";
        // below the committed baseline but above the floor → fine
        let ok = "{\"gate\": {\"fairness_jain_weighted\": 0.880}}";
        assert!(regressions(ok, baseline).is_empty());
        // under the floor → flagged even against an empty baseline
        let bad = "{\"gate\": {\"fairness_jain_weighted\": 0.800}}";
        let r = regressions(bad, "{\"gate\": {}}");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "fairness_jain_weighted");
        assert_eq!(r[0].2, FAIRNESS_JAIN_FLOOR);
    }

    #[test]
    fn gang_noop_gate_is_binary() {
        let baseline = "{\"gate\": {}}";
        let ok = "{\"gate\": {\"gang_admission_noop\": 1.0}}";
        assert!(regressions(ok, baseline).is_empty());
        let bad = "{\"gate\": {\"gang_admission_noop\": 0.0}}";
        let r = regressions(bad, baseline);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "gang_admission_noop");
        assert_eq!(r[0].2, 1.0);
    }

    #[test]
    fn gang_admission_is_a_decision_noop_without_gang_stages() {
        assert_eq!(bench_gang_noop(), 1.0);
    }

    #[test]
    fn overhead_gates_on_absolute_ceiling_not_baseline() {
        let baseline = "{\"gate\": {\"engine_event_overhead\": 1.000}}";
        // worse than baseline but under the ceiling → fine
        let ok = "{\"gate\": {\"engine_event_overhead\": 1.040}}";
        assert!(regressions(ok, baseline).is_empty());
        // over the ceiling → flagged even if the baseline were worse
        let bad = "{\"gate\": {\"engine_event_overhead\": 1.081}}";
        let r = regressions(bad, "{\"gate\": {\"engine_event_overhead\": 2.000}}");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "engine_event_overhead");
        assert_eq!(r[0].2, ENGINE_OVERHEAD_CEILING);
        // absolute gate works even with no baseline entry at all
        let r = regressions(bad, "{\"gate\": {}}");
        assert_eq!(r.len(), 1);
    }
}
