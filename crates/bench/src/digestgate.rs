//! Cross-version trace-digest equivalence gate (`rupam-bench digests`).
//!
//! Replays a fixed scenario matrix — the full workload suite on two
//! cluster shapes under all three schedulers, the multi-tenant stream,
//! and the chaos-smoke fault script — and records each run's decision-
//! trace digest. The committed golden file
//! (`tests/golden_trace_digests.txt`) pins the decision stream of the
//! tenant-aware engine (`v2`: trace events carry tenants); any refactor
//! of the engine, bus, or schedulers that changes a single decision (or
//! the order decisions are recorded in) flips a digest and fails the
//! gate loudly, instead of drifting silently.
//!
//! Digests are pure functions of `(code, cluster, workload, seed)` —
//! no wall-clock, no host randomness, integer-only event payloads — so
//! the golden file is portable across machines.

use std::fmt::Write as _;

use rupam_cluster::ClusterSpec;
use rupam_exec::{SimConfig, SimOptions};
use rupam_faults::FaultScript;
use rupam_workloads::Workload;

use crate::harness::{run_stream_observed, run_workload_observed_cfg, Sched};
use crate::multitenant::{build_stream, MEAN_GAP_SECS, TENANTS};

/// The chaos script shipped at the repository root, embedded so the
/// gate needs no working-directory assumptions.
const CHAOS_SMOKE_TOML: &str = include_str!("../../../chaos-smoke.toml");

/// Seed for the per-workload suite runs (matches
/// `tests/incremental_equivalence.rs`).
const SUITE_SEED: u64 = 707;
/// Seed for the multi-tenant stream scenario.
const STREAM_SEED: u64 = 909;
/// Seed for the chaos-script scenario.
const CHAOS_SEED: u64 = 42;

/// Digest-only observation: every event hashed, nothing retained.
fn digest_opts() -> SimOptions {
    SimOptions {
        trace_capacity: Some(0),
        audit: None,
    }
}

/// Compute the full scenario matrix. Returns `(scenario name, digest)`
/// pairs in a stable order.
pub fn compute() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let shapes = [
        ("hydra", ClusterSpec::hydra()),
        ("mix211", ClusterSpec::hydra_mix(2, 1, 1)),
    ];
    let scheds = [Sched::Fifo, Sched::Spark, Sched::Rupam];
    let config = SimConfig::default();
    for (shape, cluster) in &shapes {
        for w in Workload::ALL {
            for sched in &scheds {
                let (_, obs) = run_workload_observed_cfg(
                    cluster,
                    w,
                    sched,
                    SUITE_SEED,
                    &digest_opts(),
                    &config,
                );
                out.push((
                    format!("suite/{shape}/{}/{}", w.short(), sched.label()),
                    obs.trace.expect("digest-only trace requested").digest(),
                ));
            }
        }
    }
    let cluster = ClusterSpec::hydra();
    let stream = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, STREAM_SEED);
    for sched in &scheds {
        let (_, obs) = run_stream_observed(&cluster, &stream, sched, STREAM_SEED, &digest_opts());
        out.push((
            format!("stream/hydra/{}", sched.label()),
            obs.trace.expect("digest-only trace requested").digest(),
        ));
    }
    let script = FaultScript::parse_toml(CHAOS_SMOKE_TOML).expect("committed chaos script parses");
    let chaos_cfg = SimConfig::with_faults(script);
    for sched in [Sched::Spark, Sched::Rupam] {
        let (_, obs) = run_workload_observed_cfg(
            &cluster,
            Workload::TeraSort,
            &sched,
            CHAOS_SEED,
            &digest_opts(),
            &chaos_cfg,
        );
        out.push((
            format!("chaos/hydra/TeraSort/{}", sched.label()),
            obs.trace.expect("digest-only trace requested").digest(),
        ));
    }
    out
}

/// Render digests as the committed golden document: one
/// `name digest-hex` line per scenario, plus a schema header so format
/// drift fails loudly (same convention as the trace CSV export).
pub fn render(digests: &[(String, u64)]) -> String {
    let mut s = String::from("# rupam-trace-digests v2\n");
    for (name, d) in digests {
        let _ = writeln!(s, "{name} {d:016x}");
    }
    s
}

/// Parse a golden document back into `(name, digest)` pairs.
/// Returns `None` on a missing/unknown schema header or a bad line.
pub fn parse(doc: &str) -> Option<Vec<(String, u64)>> {
    let mut lines = doc.lines();
    if lines.next()?.trim() != "# rupam-trace-digests v2" {
        return None;
    }
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.rsplit_once(' ')?;
        out.push((name.trim().to_string(), u64::from_str_radix(hex, 16).ok()?));
    }
    Some(out)
}

/// Compare fresh digests against a committed golden document. Returns
/// human-readable mismatch descriptions (empty = equivalent). A
/// scenario present on only one side is a mismatch too: silently
/// shrinking the matrix must not pass the gate.
pub fn compare(fresh: &[(String, u64)], golden: &[(String, u64)]) -> Vec<String> {
    let mut bad = Vec::new();
    let fresh_map: std::collections::BTreeMap<&str, u64> =
        fresh.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    let golden_map: std::collections::BTreeMap<&str, u64> =
        golden.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    for (name, g) in &golden_map {
        match fresh_map.get(name) {
            Some(f) if f == g => {}
            Some(f) => bad.push(format!(
                "{name}: digest {f:016x} != golden {g:016x} — decisions diverged from the \
                 committed reference"
            )),
            None => bad.push(format!("{name}: scenario missing from the fresh matrix")),
        }
    }
    for name in fresh_map.keys() {
        if !golden_map.contains_key(name) {
            bad.push(format!(
                "{name}: scenario not in the golden file — regenerate it"
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let digests = vec![
            ("suite/hydra/LR/RUPAM".to_string(), 0x0123_4567_89ab_cdef),
            ("stream/hydra/Spark".to_string(), u64::MAX),
        ];
        let doc = render(&digests);
        assert!(doc.starts_with("# rupam-trace-digests v2\n"));
        assert_eq!(parse(&doc).unwrap(), digests);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(parse("suite/hydra/LR/RUPAM 0123456789abcdef").is_none());
        assert!(parse("# rupam-trace-digests v1\na 1").is_none());
    }

    #[test]
    fn compare_flags_divergence_and_missing() {
        let golden = vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        assert!(compare(&golden, &golden).is_empty());
        let fresh = vec![("a".to_string(), 1u64), ("b".to_string(), 3u64)];
        let bad = compare(&fresh, &golden);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("diverged"));
        let fresh = vec![("a".to_string(), 1u64)];
        assert_eq!(compare(&fresh, &golden).len(), 1);
        let fresh = vec![
            ("a".to_string(), 1u64),
            ("b".to_string(), 2u64),
            ("c".to_string(), 9u64),
        ];
        assert_eq!(compare(&fresh, &golden).len(), 1);
    }
}
