//! `rupam-bench` — wall-clock benchmarks of the scheduler itself.
//!
//! ```text
//! rupam-bench perf [--quick] [--out FILE] [--check BASELINE]
//! rupam-bench serve
//! rupam-bench digests [--out FILE] [--check GOLDEN]
//! ```
//!
//! * `perf` — time offer rounds, DB lookups, and the end-to-end
//!   8-job stream at several cluster sizes.
//! * `--quick` — CI smoke variant (fewer clusters, fewer DB ops, and no
//!   `serve` section: its wall-clock rows are too noisy for shared smoke
//!   machines, and the `--check` gate tolerates the missing rows).
//! * `serve` — only the live-service sustained-load benchmark
//!   (jobs/sec, dispatch p50/p99 under a ≥10k-task backlog on hydra256,
//!   replay-oracle certification); exits non-zero if a run is unclean
//!   or a live digest fails to replay.
//! * `--out FILE` — write the JSON report (default
//!   `BENCH_scheduler.json` in the current directory).
//! * `--check BASELINE` — after measuring, compare the gate ratios
//!   against a committed baseline file; exit non-zero if any ratio
//!   dropped by more than 25% (or the event-bus overhead exceeded 5%).
//! * `digests` — replay the fixed scenario matrix and print each run's
//!   decision-trace digest; `--check` compares against the committed
//!   golden file (`tests/golden_trace_digests.txt`) and exits non-zero
//!   on any divergence — the cross-version equivalence gate.

use std::env;
use std::process::ExitCode;

use rupam_bench::{digestgate, perf};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_digests(args: &[String]) -> ExitCode {
    eprintln!("digests: replaying the scenario matrix …");
    let fresh = digestgate::compute();
    let doc = digestgate::render(&fresh);
    print!("{doc}");
    if let Some(out) = arg_value(args, "--out") {
        if let Err(e) = std::fs::write(&out, &doc) {
            eprintln!("rupam-bench: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rupam-bench: wrote {out}");
    }
    if let Some(golden_path) = arg_value(args, "--check") {
        let text = match std::fs::read_to_string(&golden_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rupam-bench: cannot read golden file {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(golden) = digestgate::parse(&text) else {
            eprintln!("rupam-bench: {golden_path} is not a v1 digest document");
            return ExitCode::FAILURE;
        };
        let bad = digestgate::compare(&fresh, &golden);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("rupam-bench: DIGEST MISMATCH {b}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "rupam-bench: all {} scenario digests match {golden_path}",
            fresh.len()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    if cmd == "digests" {
        return run_digests(&args);
    }
    if cmd == "serve" {
        let results = rupam_bench::serve::run();
        let mut ok = true;
        for r in &results {
            println!(
                "{}: {} workers, {} tasks, {:.1} jobs/s, dispatch p50 {} us p99 {} us, \
                 max pending {}, lost {}, replay {}",
                r.label,
                r.workers,
                r.tasks,
                r.jobs_per_sec,
                r.dispatch_p50_us,
                r.dispatch_p99_us,
                r.max_pending,
                r.lost,
                if r.replay_match { "MATCH" } else { "MISMATCH" }
            );
            ok &= r.clean && r.lost == 0 && r.replay_match;
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if cmd != "perf" {
        eprintln!(
            "usage: rupam-bench perf [--quick] [--out FILE] [--check BASELINE]\n\
             \x20      rupam-bench serve\n\
             \x20      rupam-bench digests [--out FILE] [--check GOLDEN]"
        );
        return ExitCode::from(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_scheduler.json".to_string());

    let report = perf::run(quick);
    let json = perf::to_json(&report);
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("rupam-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("rupam-bench: wrote {out}");

    if let Some(baseline_path) = arg_value(&args, "--check") {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rupam-bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bad = perf::regressions(&json, &baseline);
        if !bad.is_empty() {
            for (key, fresh, base) in &bad {
                eprintln!(
                    "rupam-bench: REGRESSION {key}: {fresh:.3} vs baseline {base:.3} \
                     (tolerance {:.0}%)",
                    perf::GATE_TOLERANCE * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("rupam-bench: gate clean vs {baseline_path}");
    }
    ExitCode::SUCCESS
}
