//! `rupam-bench` — wall-clock benchmarks of the scheduler itself.
//!
//! ```text
//! rupam-bench perf [--quick] [--out FILE] [--check BASELINE]
//! ```
//!
//! * `perf` — time offer rounds, DB lookups, and the end-to-end
//!   8-job stream at several cluster sizes.
//! * `--quick` — CI smoke variant (fewer clusters, fewer DB ops).
//! * `--out FILE` — write the JSON report (default
//!   `BENCH_scheduler.json` in the current directory).
//! * `--check BASELINE` — after measuring, compare the gate ratios
//!   against a committed baseline file; exit non-zero if any ratio
//!   dropped by more than 25%.

use std::env;
use std::process::ExitCode;

use rupam_bench::perf;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    if cmd != "perf" {
        eprintln!("usage: rupam-bench perf [--quick] [--out FILE] [--check BASELINE]");
        return ExitCode::from(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_scheduler.json".to_string());

    let report = perf::run(quick);
    let json = perf::to_json(&report);
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("rupam-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("rupam-bench: wrote {out}");

    if let Some(baseline_path) = arg_value(&args, "--check") {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rupam-bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bad = perf::regressions(&json, &baseline);
        if !bad.is_empty() {
            for (key, fresh, base) in &bad {
                eprintln!(
                    "rupam-bench: REGRESSION {key}: {fresh:.3} vs baseline {base:.3} \
                     (tolerance {:.0}%)",
                    perf::GATE_TOLERANCE * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("rupam-bench: gate clean vs {baseline_path}");
    }
    ExitCode::SUCCESS
}
