//! `experiments` — regenerate every table and figure of the RUPAM paper.
//!
//! ```text
//! experiments [all|fig2|fig3|table2|table4|fig5|fig6|table5|fig7|fig8|fig9|ablation|multitenant|fairness|degraded|spot] [--quick]
//! ```
//!
//! `--quick` runs one seed instead of the paper's five (for smoke runs).

use std::env;

use rupam_bench::harness::{placement_census, run_workload, Sched, SEEDS};
use rupam_bench::{
    ablation, breakdown, degraded, fairness, hardware, locality, motivation, multitenant, overall,
    spot, utilization,
};
use rupam_cluster::ClusterSpec;
use rupam_workloads::Workload;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let seeds: Vec<u64> = if quick {
        vec![SEEDS[0]]
    } else {
        SEEDS.to_vec()
    };
    let cluster = ClusterSpec::hydra();

    // `debug <short>` prints the calibration census for one workload
    if what == "debug" {
        let short = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .nth(1)
            .cloned()
            .unwrap_or_default();
        let w = Workload::ALL
            .iter()
            .copied()
            .find(|w| w.short().eq_ignore_ascii_case(&short))
            .unwrap_or_else(|| panic!("unknown workload {short:?}"));
        for sched in [Sched::Spark, Sched::Rupam] {
            let report = run_workload(&cluster, w, &sched, seeds[0]);
            print!("{}", placement_census(&cluster, &report));
        }
        return;
    }

    let run = |name: &str| what == "all" || what == name;

    if run("table2") {
        hardware::table2(&cluster).print();
        println!();
    }
    if run("table4") {
        hardware::table4(&cluster).print();
        println!();
    }
    if run("fig2") {
        let (mcluster, report) = motivation::fig2_run(seeds[0]);
        motivation::fig2_table(&mcluster, &report, 16).print();
        println!();
    }
    if run("fig3") {
        let (mcluster, report) = motivation::fig3_run(seeds[0]);
        motivation::fig3_table(&mcluster, &report).print();
        println!(
            "  max/min successful task duration within the run: {:.1}x\n",
            motivation::fig3_duration_spread(&report)
        );
    }
    if run("fig5") {
        let rows = overall::fig5(&cluster, &seeds);
        overall::fig5_table(&rows).print();
        let s = overall::fig5_summary(&rows);
        println!(
            "  mean execution-time reduction: {:.1}% (paper: 37.7%)\n  \
             iterative workloads geomean speedup: {:.2}x (paper ~2.62x)\n  \
             one-shot workloads geomean speedup: {:.2}x\n",
            s.mean_reduction * 100.0,
            s.iterative_speedup,
            s.oneshot_speedup
        );
    }
    if run("fig6") {
        let counts = [1usize, 2, 4, 6, 8, 12, 16, 20];
        let pts = overall::fig6(&cluster, &counts, &seeds[..seeds.len().min(3)]);
        overall::fig6_table(&pts).print();
        let sweep: Vec<(String, f64)> = pts
            .iter()
            .map(|p| (p.iterations.to_string(), p.speedup()))
            .collect();
        print!(
            "{}",
            rupam_metrics::chart::sweep_chart("RUPAM speedup vs LR iterations", &sweep, 40, "x")
        );
        println!();
    }
    if run("table5") {
        let rows = locality::table5(&cluster, seeds[0]);
        locality::table5_table(&rows).print();
        println!();
    }
    if run("fig7") {
        let rows = breakdown::fig7(&cluster, seeds[0]);
        breakdown::fig7_table(&rows).print();
        println!();
    }
    if run("fig8") {
        let rows = utilization::fig8(&cluster, seeds[0]);
        utilization::fig8_table(&rows).print();
        println!();
    }
    if run("fig9") {
        let f = utilization::fig9(&cluster, seeds[0]);
        utilization::fig9_table(&f).print();
        for (name, series) in [
            ("Spark", &f.spark_cpu_series),
            ("RUPAM", &f.rupam_cpu_series),
        ] {
            let values: Vec<f64> = series.iter().map(|p| p.1).collect();
            let values = rupam_metrics::chart::downsample(&values, 64);
            print!(
                "{}",
                rupam_metrics::chart::bar_chart(
                    &format!("{name}: per-second CPU-utilisation σ across nodes (PR)"),
                    &values,
                    6,
                    "σ",
                )
            );
        }
        println!();
    }
    if run("sensitivity") || what == "all" {
        let ladder = rupam_bench::sensitivity::default_ladder();
        let rows = rupam_bench::sensitivity::sweep(
            &ladder,
            Workload::LogisticRegression,
            &seeds[..seeds.len().min(2)],
        );
        rupam_bench::sensitivity::table(Workload::LogisticRegression, &rows).print();
        println!();
    }
    if run("multitenant") {
        let mt_seeds = &seeds[..seeds.len().min(3)];
        let rows = multitenant::run(&cluster, mt_seeds);
        multitenant::table(&rows).print();
        let wc = multitenant::warm_vs_cold(&cluster, Workload::LogisticRegression, mt_seeds);
        multitenant::warm_vs_cold_table(Workload::LogisticRegression, &wc).print();
        println!(
            "  cold-DB JCT penalty: {:+.1}%\n",
            wc.cold_penalty() * 100.0
        );
    }
    if run("fairness") {
        let f_seeds = &seeds[..seeds.len().min(3)];
        let rows = fairness::run(&fairness::contended_cluster(), f_seeds);
        fairness::table(&rows).print();
        println!();
    }
    if run("degraded") {
        for sc in degraded::scenarios() {
            println!("  {}: {}", sc.label, sc.what);
        }
        let rows = degraded::run(&cluster, Workload::TeraSort, &seeds[..seeds.len().min(3)]);
        print!("{}", degraded::render(&rows));
        println!();
    }
    if run("spot") {
        let cells = spot::run(&cluster, &seeds[..seeds.len().min(2)]);
        print!("{}", spot::render(&cells));
        if let Some(r) = spot::spot_resilience(&cells) {
            println!("  spot resilience (fixed-fleet / greedy-churn makespan): {r:.3}");
        }
        if let Some(r) = spot::spot_cost_ratio(&cells) {
            println!("  cost ratio (risk-blind $ / risk-aware $, greedy): {r:.3}");
        }
        println!();
    }
    if run("ablation") {
        let rows = ablation::run(&cluster, &seeds[..seeds.len().min(2)]);
        ablation::table(&rows).print();
        let sweep = ablation::res_factor_sweep(&cluster, &[1.2, 1.5, 2.0, 3.0, 4.0], &seeds[..1]);
        ablation::res_factor_table(&sweep).print();
        println!();
    }
}
