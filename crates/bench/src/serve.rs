//! Sustained-load benchmark of the live service (`rupam-bench serve`,
//! and the `serve_*` section of `rupam-bench perf`).
//!
//! Drives `rupam-serve` the way a saturated cluster would be driven:
//! every job of a large catalog is submitted up-front, so the first
//! offer round already faces the full backlog (≥10k pending tasks on
//! hydra256) and executor memory — not task count — bounds concurrency.
//! Reported per fleet shape:
//!
//! * **jobs/sec admitted** — wall-clock job completion throughput;
//! * **dispatch p50/p99** — stage-release/requeue → launch latency under
//!   the backlog (tick-batched offers, so the tick period is the floor);
//! * **max pending** — the deepest backlog an offer round ever saw;
//! * **replay digest match** — the live run's input log replayed through
//!   the deterministic calendar must reproduce the decision-trace digest
//!   bit for bit.
//!
//! Wall-clock rows (jobs/sec, p99) are noisy on shared machines, so the
//! perf gate only includes the serve section on full runs — `--quick`
//! skips it and the regression checker tolerates the missing rows.

use std::sync::Arc;
use std::time::Duration;

use rupam::{RupamConfig, RupamScheduler};
use rupam_dag::app::JobId;
use rupam_faults::FaultScript;
use rupam_serve::testbed::{build_fleet, pressure_stream_sized};
use rupam_serve::{replay, server, ServeConfig};
use rupam_simcore::units::ByteSize;

/// One fleet shape's numbers.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Fleet label (`hydra64`, `hydra256`).
    pub label: String,
    /// Worker-agent threads.
    pub workers: usize,
    /// Tasks in the catalog.
    pub tasks: usize,
    /// Jobs completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// Median dispatch latency, µs.
    pub dispatch_p50_us: u64,
    /// 99th-percentile dispatch latency, µs.
    pub dispatch_p99_us: u64,
    /// Deepest pending backlog an offer round saw.
    pub max_pending: usize,
    /// Offer rounds the driver ran (event-driven, so this tracks state
    /// changes — not wall time / tick count).
    pub offer_rounds: u64,
    /// Median driver-side offer-round wall time, µs.
    pub offer_p50_us: u64,
    /// 95th-percentile driver-side offer-round wall time, µs.
    pub offer_p95_us: u64,
    /// Launch commands dropped because the task was no longer pending.
    pub stale_launch_drops: u64,
    /// Launch commands dropped because the target node was dead or
    /// unregistered.
    pub dead_launch_drops: u64,
    /// Live digest reproduced by the calendar replay.
    pub replay_match: bool,
    /// Tasks lost across recovery (must be 0).
    pub lost: usize,
    /// Clean drain (all submitted jobs completed, no abort).
    pub clean: bool,
}

/// Run the sustained-load scenario on one fleet shape.
pub fn bench_fleet(
    label: &str,
    workers: usize,
    jobs: usize,
    tasks_per_job: usize,
) -> ServeBenchResult {
    // 6 GiB tasks: ~2 concurrent per thor-class worker, so the backlog
    // stays deep; ~60 gigacycles ≈ 20 ms wall per task at 1/1000 scale
    let catalog = Arc::new(pressure_stream_sized(
        jobs,
        tasks_per_job,
        60.0,
        ByteSize::mib(6 * 1024),
    ));
    let cluster = Arc::new(build_fleet(workers));
    let cfg = ServeConfig {
        tick: Duration::from_millis(10),
        worker_heartbeat: Duration::from_millis(10),
        time_scale: 0.001,
        max_wall: Some(Duration::from_secs(300)),
        ..ServeConfig::default()
    };

    let t = std::time::Instant::now();
    let handle = server::start(
        Arc::clone(&cluster),
        Arc::clone(&catalog),
        Box::new(RupamScheduler::new(RupamConfig::default())),
        cfg.clone(),
        &FaultScript::empty(),
    );
    let mut client = handle.client.clone();
    for j in 0..jobs {
        client.submit(JobId(j)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let outcome = handle.wait().expect("serve bench run");
    let wall = t.elapsed().as_secs_f64();

    let mut oracle = RupamScheduler::new(RupamConfig::default());
    let replay_match = replay(&cluster, &catalog, &mut oracle, &cfg, &outcome.log)
        .map(|r| r.digest == outcome.report.digest)
        .unwrap_or(false);

    let r = &outcome.report;
    ServeBenchResult {
        label: label.to_string(),
        workers,
        tasks: jobs * tasks_per_job,
        jobs_per_sec: r.jobs_completed as f64 / wall.max(1e-9),
        dispatch_p50_us: r.dispatch_p50_us,
        dispatch_p99_us: r.dispatch_p99_us,
        max_pending: r.max_pending,
        offer_rounds: r.offer_rounds,
        offer_p50_us: r.offer_p50_us,
        offer_p95_us: r.offer_p95_us,
        stale_launch_drops: r.stale_launch_drops,
        dead_launch_drops: r.dead_launch_drops,
        replay_match,
        lost: r.lost_tasks,
        clean: r.clean,
    }
}

/// The two fleet shapes the gate tracks. hydra256 carries the ≥10k
/// pending-task acceptance bar.
pub fn run() -> Vec<ServeBenchResult> {
    let mut out = Vec::new();
    eprintln!("serve: hydra64 sustained load …");
    out.push(bench_fleet("hydra64", 64, 64, 48));
    eprintln!("serve: hydra256 sustained load (>=10k pending) …");
    out.push(bench_fleet("hydra256", 256, 64, 200));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_bench_is_clean_and_replayable() {
        let r = bench_fleet("hydra8", 8, 4, 12);
        assert!(r.clean, "bench run must drain cleanly: {r:?}");
        assert!(r.replay_match, "live digest must replay");
        assert_eq!(r.lost, 0);
        assert!(r.jobs_per_sec > 0.0);
        assert!(r.max_pending >= 1);
    }
}
