//! Table V — tasks per locality level under Spark vs RUPAM.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{locality, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let rows = locality::table5(&cluster, SEEDS[0]);
    locality::table5_table(&rows).print();
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("census_terasort", |b| {
        b.iter(|| {
            rupam_bench::run_workload(
                &cluster,
                rupam_workloads::Workload::TeraSort,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
            )
            .locality_counts()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
