//! Fig. 6 — LR speedup under RUPAM vs number of workload iterations.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{overall, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let counts = [1usize, 2, 4, 6, 8, 12, 16, 20];
    let pts = overall::fig6(&cluster, &counts, &SEEDS[..3]);
    overall::fig6_table(&pts).print();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("lr_8iter_pair", |b| {
        b.iter(|| overall::fig6(&cluster, &[8], &SEEDS[..1])[0].speedup())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
