//! Fig. 9 — standard deviation of per-node utilisation during PageRank.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{utilization, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let f = utilization::fig9(&cluster, SEEDS[0]);
    utilization::fig9_table(&f).print();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("pagerank_balance", |b| {
        b.iter(|| utilization::fig9(&cluster, SEEDS[0]).rupam.cpu)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
