//! Fig. 5 — overall performance of all seven workloads under stock Spark
//! and RUPAM. Prints the full 5-seed table once, then times one
//! representative head-to-head pair per benchmark iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{overall, SEEDS};
use rupam_cluster::ClusterSpec;
use rupam_workloads::Workload;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let rows = overall::fig5(&cluster, &SEEDS);
    overall::fig5_table(&rows).print();
    let s = overall::fig5_summary(&rows);
    println!(
        "mean reduction {:.1}% (paper 37.7%) | iterative geomean {:.2}x (paper ~2.62x)",
        s.mean_reduction * 100.0,
        s.iterative_speedup
    );
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("terasort_head_to_head", |b| {
        b.iter(|| overall::quick_pair(&cluster, Workload::TeraSort, SEEDS[0]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
