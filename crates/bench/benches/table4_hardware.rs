//! Tables II & IV — cluster specifications and hardware microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::hardware;
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    hardware::table2(&cluster).print();
    hardware::table4(&cluster).print();
    c.bench_function("table4/microbench_model", |b| {
        b.iter(|| hardware::table4_rows(&cluster).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
