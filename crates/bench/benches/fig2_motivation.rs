//! Fig. 2 — system utilisation under 4K×4K matrix multiplication on the
//! two-node motivation cluster. Prints the paper-style series once, then
//! times the simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::motivation;

fn bench(c: &mut Criterion) {
    let (cluster, report) = motivation::fig2_run(rupam_bench::SEEDS[0]);
    motivation::fig2_table(&cluster, &report, 16).print();
    c.bench_function("fig2/matmul_2node_spark", |b| {
        b.iter(|| motivation::fig2_run(rupam_bench::SEEDS[0]).1.makespan)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
