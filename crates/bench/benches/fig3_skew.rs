//! Fig. 3 — PageRank task distribution and execution breakdown on the
//! two-node cluster under stock Spark.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::motivation;

fn bench(c: &mut Criterion) {
    let (cluster, report) = motivation::fig3_run(rupam_bench::SEEDS[0]);
    motivation::fig3_table(&cluster, &report).print();
    println!(
        "max/min task duration spread: {:.1}x (paper: up to 31x)",
        motivation::fig3_duration_spread(&report)
    );
    c.bench_function("fig3/pagerank_2node_spark", |b| {
        b.iter(|| motivation::fig3_run(rupam_bench::SEEDS[0]).1.makespan)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
