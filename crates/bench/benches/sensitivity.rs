//! Beyond-paper ablation: RUPAM's speedup as a function of cluster
//! heterogeneity (uniform → Hydra-grade mixes).

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{sensitivity, SEEDS};
use rupam_workloads::Workload;

fn bench(c: &mut Criterion) {
    let ladder = sensitivity::default_ladder();
    let rows = sensitivity::sweep(&ladder, Workload::LogisticRegression, &SEEDS[..2]);
    sensitivity::table(Workload::LogisticRegression, &rows).print();
    println!(
        "speedup spread across mixes: {:.2}x",
        sensitivity::speedup_spread(&rows)
    );
    let mut g = c.benchmark_group("sensitivity");
    g.sample_size(10);
    g.bench_function("uniform_thor_pair", |b| {
        let cluster = rupam_cluster::ClusterSpec::hydra_mix(12, 0, 0);
        b.iter(|| {
            rupam_bench::run_workload(
                &cluster,
                Workload::TeraSort,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
            )
            .makespan
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
