//! Fig. 7 — per-category execution-time breakdown for LR, SQL, PR.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{breakdown, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let rows = breakdown::fig7(&cluster, SEEDS[0]);
    breakdown::fig7_table(&rows).print();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("lr_breakdown", |b| {
        b.iter(|| {
            breakdown::project(&rupam_bench::run_workload(
                &cluster,
                rupam_workloads::Workload::LogisticRegression,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
            ))
            .compute
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
