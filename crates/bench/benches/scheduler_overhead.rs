//! Microbenchmarks of the scheduler decision path itself — the paper's
//! §IV-D observation that RUPAM's extra bookkeeping keeps scheduler
//! delay "moderate" relative to stock Spark.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam::db::{TaskChar, TaskCharDb, TaskKey};
use rupam_bench::SEEDS;
use rupam_cluster::resources::ResourceKind;
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_simcore::units::ByteSize;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();

    // end-to-end simulated scheduler-delay comparison
    for (name, sched) in [
        ("spark", rupam_bench::Sched::Spark),
        ("rupam", rupam_bench::Sched::Rupam),
    ] {
        let report = rupam_bench::run_workload(
            &cluster,
            rupam_workloads::Workload::TeraSort,
            &sched,
            SEEDS[0],
        );
        let total = report.breakdown_totals();
        println!(
            "{name}: total scheduler delay {} across {} attempts",
            total.get(rupam_metrics::breakdown::BreakdownCategory::SchedulerDelay),
            report.records.len()
        );
    }

    c.bench_function("overhead/db_write_read", |b| {
        let db = TaskCharDb::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = TaskKey::new("bench/stage", (i % 64) as usize);
            db.update(key, |c| {
                c.observe(ResourceKind::Cpu, NodeId(0), 1.0, ByteSize::mib(64), false)
            });
            i += 1;
            db.read(&key).map(|c: TaskChar| c.runs)
        })
    });

    c.bench_function("overhead/full_offer_round_sim", |b| {
        b.iter(|| {
            rupam_bench::run_workload(
                &cluster,
                rupam_workloads::Workload::GramianMatrix,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
            )
            .makespan
        })
    });

    // upper bound on the decision-trace subsystem's cost: the same run
    // with the trace ring *and* the invariant auditor on every offer
    // round — the disabled path (a `None` check) is strictly cheaper
    c.bench_function("overhead/full_offer_round_sim_audited", |b| {
        b.iter(|| {
            rupam_bench::run_workload_observed(
                &cluster,
                rupam_workloads::Workload::GramianMatrix,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
                &rupam_exec::SimOptions::audited(),
            )
            .0
            .makespan
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
