//! Fig. 8 — average system utilisation for LR, SQL, PR.

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{utilization, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let rows = utilization::fig8(&cluster, SEEDS[0]);
    utilization::fig8_table(&rows).print();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("lr_utilization", |b| {
        b.iter(|| {
            utilization::summarize(&rupam_bench::run_workload(
                &cluster,
                rupam_workloads::Workload::LogisticRegression,
                &rupam_bench::Sched::Rupam,
                SEEDS[0],
            ))
            .cpu
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
