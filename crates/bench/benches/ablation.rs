//! Ablations of RUPAM's design choices (task DB, dynamic executors,
//! locality, straggler handling, Res_factor).

use criterion::{criterion_group, criterion_main, Criterion};
use rupam_bench::{ablation, SEEDS};
use rupam_cluster::ClusterSpec;

fn bench(c: &mut Criterion) {
    let cluster = ClusterSpec::hydra();
    let rows = ablation::run(&cluster, &SEEDS[..2]);
    ablation::table(&rows).print();
    let sweep = ablation::res_factor_sweep(&cluster, &[1.2, 1.5, 2.0, 3.0, 4.0], &SEEDS[..1]);
    ablation::res_factor_table(&sweep).print();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("lr_no_db", |b| {
        let cfg = rupam::RupamConfig {
            use_task_db: false,
            ..rupam::RupamConfig::default()
        };
        let sched = rupam_bench::Sched::RupamWith(cfg);
        b.iter(|| {
            rupam_bench::run_workload(
                &cluster,
                rupam_workloads::Workload::LogisticRegression,
                &sched,
                SEEDS[0],
            )
            .makespan
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
