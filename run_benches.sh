#!/bin/bash
# Run the full Criterion benchmark suite, capturing everything the
# benches print (each bench regenerates its paper table/figure first).
set -u
cd /root/repo
: > bench_output.txt
cargo bench --workspace 2>&1 | tee -a bench_output.txt
echo "ALL_BENCHES_DONE rc=$?" >> bench_output.txt

# Scheduler wall-clock gate. --quick deliberately excludes the serve_*
# rows (live-service jobs/sec and dispatch latency are wall-clock noisy
# on shared machines); the checker compares only rows present in the
# fresh report, so the gate passes cleanly without them. Run
# `rupam-bench perf` (no --quick) on a quiet machine to regenerate the
# full BENCH_scheduler.json including the serve section.
cargo run --release -p rupam-bench --bin rupam-bench -- \
    perf --quick --check BENCH_scheduler.json --out /tmp/bench-fresh.json \
    2>&1 | tee -a bench_output.txt
echo "PERF_GATE_DONE rc=$?" >> bench_output.txt

# Live-service sustained-load numbers (informational here; the bounded
# CI smoke uses rupam-serve directly). Replay-oracle mismatches still
# fail loudly — determinism is machine-independent even when latency
# numbers are not.
cargo run --release -p rupam-bench --bin rupam-bench -- serve \
    2>&1 | tee -a bench_output.txt
echo "SERVE_BENCH_DONE rc=$?" >> bench_output.txt
