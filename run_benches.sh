#!/bin/bash
# Run the full Criterion benchmark suite, capturing everything the
# benches print (each bench regenerates its paper table/figure first).
set -u
cd /root/repo
: > bench_output.txt
cargo bench --workspace 2>&1 | tee -a bench_output.txt
echo "ALL_BENCHES_DONE rc=$?" >> bench_output.txt
