//! `rupam-sim` — run one scheduling scenario from the command line.
//!
//! ```text
//! rupam-sim [--cluster hydra|two-node|uniform:<n>|mix:<thor>,<hulk>,<stack>]
//!           [--workload LR|SQL|TeraSort|PR|TC|GM|KMeans]
//!           [--scheduler spark|rupam|fifo]
//!           [--seed <n>] [--timeline] [--census] [--compare]
//! ```
//!
//! Examples:
//!
//! ```text
//! rupam-sim --workload PR --compare --timeline
//! rupam-sim --cluster mix:9,3,0 --workload LR --scheduler rupam --census
//! ```

use std::env;
use std::process::exit;

use rupam_bench::{placement_census, run_workload, Sched};
use rupam_cluster::ClusterSpec;
use rupam_metrics::timeline;
use rupam_workloads::Workload;

struct Options {
    cluster: ClusterSpec,
    cluster_label: String,
    workload: Workload,
    scheduler: Sched,
    seed: u64,
    timeline: bool,
    census: bool,
    compare: bool,
    csv: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: rupam-sim [--cluster hydra|two-node|uniform:<n>|mix:<t>,<h>,<s>]\n\
         \x20                [--workload LR|SQL|TeraSort|PR|TC|GM|KMeans]\n\
         \x20                [--scheduler spark|rupam|fifo] [--seed <n>]\n\
         \x20                [--timeline] [--census] [--compare] [--csv <path>]"
    );
    exit(2)
}

fn parse_cluster(spec: &str) -> Option<(ClusterSpec, String)> {
    if spec == "hydra" {
        return Some((ClusterSpec::hydra(), "hydra (6 thor / 4 hulk / 2 stack)".into()));
    }
    if spec == "two-node" {
        return Some((ClusterSpec::two_node_motivation(), "two-node motivation".into()));
    }
    if let Some(n) = spec.strip_prefix("uniform:") {
        let n: usize = n.parse().ok().filter(|&n| n > 0)?;
        return Some((ClusterSpec::homogeneous(n), format!("{n} uniform nodes")));
    }
    if let Some(mix) = spec.strip_prefix("mix:") {
        let parts: Vec<usize> = mix.split(',').map(|p| p.parse().ok()).collect::<Option<_>>()?;
        if parts.len() != 3 || parts.iter().sum::<usize>() == 0 {
            return None;
        }
        return Some((
            ClusterSpec::hydra_mix(parts[0], parts[1], parts[2]),
            format!("{} thor / {} hulk / {} stack", parts[0], parts[1], parts[2]),
        ));
    }
    None
}

fn parse_args() -> Options {
    let mut opts = Options {
        cluster: ClusterSpec::hydra(),
        cluster_label: "hydra (6 thor / 4 hulk / 2 stack)".into(),
        workload: Workload::LogisticRegression,
        scheduler: Sched::Rupam,
        seed: 101,
        timeline: false,
        census: false,
        compare: false,
        csv: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cluster" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_cluster(&v) {
                    Some((c, label)) => {
                        opts.cluster = c;
                        opts.cluster_label = label;
                    }
                    None => {
                        eprintln!("unknown cluster spec {v:?}");
                        usage()
                    }
                }
            }
            "--workload" => {
                let v = args.next().unwrap_or_else(|| usage());
                match Workload::ALL.iter().find(|w| w.short().eq_ignore_ascii_case(&v)) {
                    Some(w) => opts.workload = *w,
                    None => {
                        eprintln!("unknown workload {v:?}");
                        usage()
                    }
                }
            }
            "--scheduler" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scheduler = match v.to_ascii_lowercase().as_str() {
                    "spark" => Sched::Spark,
                    "rupam" => Sched::Rupam,
                    "fifo" => Sched::Fifo,
                    _ => {
                        eprintln!("unknown scheduler {v:?}");
                        usage()
                    }
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--csv" => opts.csv = Some(args.next().unwrap_or_else(|| usage())),
            "--timeline" => opts.timeline = true,
            "--census" => opts.census = true,
            "--compare" => opts.compare = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    opts
}

fn run_one(opts: &Options, sched: &Sched) {
    let report = run_workload(&opts.cluster, opts.workload, sched, opts.seed);
    let waste = timeline::waste(&report);
    println!(
        "{:<6} | makespan {:>9} | completed {} | oom {} | exec-lost {} | spec {} (wins {}) \
         | gpu tasks {} | wasted {:.1}s",
        sched.label(),
        format!("{}", report.makespan),
        report.completed,
        report.oom_failures,
        report.executor_losses,
        report.speculative_launched,
        report.speculative_wins,
        report.gpu_task_count(),
        (waste.failed_secs + waste.race_secs).max(0.0),
    );
    if opts.census {
        print!("{}", placement_census(&opts.cluster, &report));
    }
    if opts.timeline {
        let names: Vec<String> =
            opts.cluster.iter().map(|(_, n)| n.name.clone()).collect();
        print!("{}", timeline::render(&report, &names, 72));
    }
    if let Some(path) = &opts.csv {
        let csv = rupam_metrics::export::records_csv(&report);
        let file = format!("{path}.{}.csv", sched.label().to_lowercase());
        match std::fs::write(&file, csv) {
            Ok(()) => println!("wrote task records to {file}"),
            Err(e) => eprintln!("could not write {file}: {e}"),
        }
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "cluster: {} | workload: {} ({}) | seed {}",
        opts.cluster_label,
        opts.workload.name(),
        opts.workload.input_description(),
        opts.seed
    );
    if opts.compare {
        for sched in [Sched::Fifo, Sched::Spark, Sched::Rupam] {
            run_one(&opts, &sched);
        }
    } else {
        run_one(&opts, &opts.scheduler.clone());
    }
}
