//! `rupam-sim` — run one scheduling scenario from the command line.
//!
//! ```text
//! rupam-sim [--cluster hydra|two-node|uniform:<n>|mix:<thor>,<hulk>,<stack>]
//!           [--workload LR|SQL|TeraSort|PR|TC|GM|KMeans]
//!           [--scheduler spark|rupam|fifo]
//!           [--seed <n>] [--jobs <n>] [--arrival-secs <s>]
//!           [--tenants a:3,b:1]
//!           [--faults <script.toml>] [--elastic <script.toml>]
//!           [--timeline] [--census] [--compare]
//!           [--trace <path>] [--audit]
//! ```
//!
//! Examples:
//!
//! ```text
//! rupam-sim --workload PR --compare --timeline
//! rupam-sim --cluster mix:9,3,0 --workload LR --scheduler rupam --census
//! rupam-sim --workload SQL --audit --trace /tmp/sql-trace
//! rupam-sim --jobs 4 --arrival-secs 30 --compare
//! rupam-sim --workload TeraSort --faults chaos-smoke.toml --audit
//! ```
//!
//! `--faults <script.toml>` injects the chaos script (see the README
//! for the `[[fault]]` TOML format) into every run; the report then
//! carries fault/recovery counters.
//!
//! `--elastic <script.toml>` arms the spot tier: the script names spot
//! pools (`[[pool]]`) and controller tunables (`[elastic]`), the cluster
//! churns under seeded price-correlated preemptions and autoscaling, and
//! the report carries a cost ledger. Composes with `--faults`.
//!
//! `--audit` replays every offer round through the invariant auditor and
//! reports violations (exit code 1 if any fire); `--trace <path>` writes
//! the full decision trace as CSV, one file per scheduler.
//!
//! `--jobs N` (N > 1) switches to a multi-tenant stream: N suite
//! workloads, cycling [`Workload::ALL`] starting at `--workload`, arrive
//! online with seeded exponential inter-arrival gaps of mean
//! `--arrival-secs` (default 30). One long-lived scheduler serves the
//! whole stream and per-job completion times are reported.
//!
//! `--tenants a:3,b:1` names the stream's tenants and weights their
//! arrival shares: each of the `--jobs` submissions is attributed to a
//! tenant drawn (seeded) proportionally to its weight, instead of every
//! job being its own tenant. With `--scheduler rupam` the same weights
//! arm weighted-fair allocation, so tenant `a` is also *entitled* to 3x
//! tenant `b`'s share of each offer round; other schedulers use the
//! weights for arrival attribution only.

use std::env;
use std::process::exit;

use rand::Rng;
use rupam::{AllocationPolicy, RupamConfig, TenantSpec};
use rupam_bench::multitenant::build_stream;
use rupam_bench::{
    placement_census, run_stream_cfg, run_stream_observed_cfg, run_workload_cfg,
    run_workload_observed_cfg, Sched,
};
use rupam_cluster::ClusterSpec;
use rupam_dag::{JobStream, MergedStream, TenantId};
use rupam_elastic::ElasticConfig;
use rupam_exec::{AuditConfig, SimConfig, SimOptions};
use rupam_faults::FaultScript;
use rupam_metrics::timeline;
use rupam_metrics::trace::DEFAULT_TRACE_CAPACITY;
use rupam_simcore::time::SimTime;
use rupam_simcore::RngFactory;
use rupam_workloads::Workload;

struct Options {
    cluster: ClusterSpec,
    cluster_label: String,
    workload: Workload,
    scheduler: Sched,
    seed: u64,
    jobs: usize,
    arrival_secs: f64,
    tenants: Vec<TenantArg>,
    timeline: bool,
    census: bool,
    compare: bool,
    csv: Option<String>,
    trace: Option<String>,
    audit: bool,
    config: SimConfig,
    faults_label: Option<String>,
    elastic_label: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: rupam-sim [--cluster hydra|two-node|uniform:<n>|mix:<t>,<h>,<s>]\n\
         \x20                [--workload LR|SQL|TeraSort|PR|TC|GM|KMeans]\n\
         \x20                [--scheduler spark|rupam|fifo] [--seed <n>]\n\
         \x20                [--jobs <n>] [--arrival-secs <s>] [--tenants a:3,b:1]\n\
         \x20                [--faults <script.toml>] [--elastic <script.toml>]\n\
         \x20                [--timeline] [--census] [--compare] [--csv <path>]\n\
         \x20                [--trace <path>] [--audit]"
    );
    exit(2)
}

fn parse_cluster(spec: &str) -> Option<(ClusterSpec, String)> {
    if spec == "hydra" {
        return Some((
            ClusterSpec::hydra(),
            "hydra (6 thor / 4 hulk / 2 stack)".into(),
        ));
    }
    if spec == "two-node" {
        return Some((
            ClusterSpec::two_node_motivation(),
            "two-node motivation".into(),
        ));
    }
    if let Some(n) = spec.strip_prefix("uniform:") {
        let n: usize = n.parse().ok().filter(|&n| n > 0)?;
        return Some((ClusterSpec::homogeneous(n), format!("{n} uniform nodes")));
    }
    if let Some(mix) = spec.strip_prefix("mix:") {
        let parts: Vec<usize> = mix
            .split(',')
            .map(|p| p.parse().ok())
            .collect::<Option<_>>()?;
        if parts.len() != 3 || parts.iter().sum::<usize>() == 0 {
            return None;
        }
        return Some((
            ClusterSpec::hydra_mix(parts[0], parts[1], parts[2]),
            format!("{} thor / {} hulk / {} stack", parts[0], parts[1], parts[2]),
        ));
    }
    None
}

/// One named tenant from `--tenants`.
struct TenantArg {
    name: String,
    weight: f64,
    /// Optional dominant-share quota ceiling (`name:weight@quota`).
    quota: Option<f64>,
}

/// Parse `a:3,b:1` (or `a:3@0.4,b:1` to cap tenant `a` at 40 % of the
/// cluster's dominant resource) into named tenant weights. Names must
/// be unique and non-empty; weights must be finite and positive;
/// quotas must lie in `(0, 1]`.
fn parse_tenants(spec: &str) -> Option<Vec<TenantArg>> {
    let mut tenants: Vec<TenantArg> = Vec::new();
    for part in spec.split(',') {
        let (name, rest) = part.split_once(':')?;
        let (weight, quota) = match rest.split_once('@') {
            Some((w, q)) => {
                let q: f64 = q.parse().ok()?;
                if !q.is_finite() || q <= 0.0 || q > 1.0 {
                    return None;
                }
                (w, Some(q))
            }
            None => (rest, None),
        };
        let weight: f64 = weight.parse().ok()?;
        if name.is_empty() || !weight.is_finite() || weight <= 0.0 {
            return None;
        }
        if tenants.iter().any(|t| t.name == name) {
            return None;
        }
        tenants.push(TenantArg {
            name: name.to_string(),
            weight,
            quota,
        });
    }
    if tenants.is_empty() {
        return None;
    }
    Some(tenants)
}

fn parse_args() -> Options {
    let mut opts = Options {
        cluster: ClusterSpec::hydra(),
        cluster_label: "hydra (6 thor / 4 hulk / 2 stack)".into(),
        workload: Workload::LogisticRegression,
        scheduler: Sched::Rupam,
        seed: 101,
        jobs: 1,
        arrival_secs: 30.0,
        tenants: Vec::new(),
        timeline: false,
        census: false,
        compare: false,
        csv: None,
        trace: None,
        audit: false,
        config: SimConfig::default(),
        faults_label: None,
        elastic_label: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cluster" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_cluster(&v) {
                    Some((c, label)) => {
                        opts.cluster = c;
                        opts.cluster_label = label;
                    }
                    None => {
                        eprintln!("unknown cluster spec {v:?}");
                        usage()
                    }
                }
            }
            "--workload" => {
                let v = args.next().unwrap_or_else(|| usage());
                match Workload::ALL
                    .iter()
                    .find(|w| w.short().eq_ignore_ascii_case(&v))
                {
                    Some(w) => opts.workload = *w,
                    None => {
                        eprintln!("unknown workload {v:?}");
                        usage()
                    }
                }
            }
            "--scheduler" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scheduler = match v.to_ascii_lowercase().as_str() {
                    "spark" => Sched::Spark,
                    "rupam" => Sched::Rupam,
                    "fifo" => Sched::Fifo,
                    _ => {
                        eprintln!("unknown scheduler {v:?}");
                        usage()
                    }
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.jobs = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage());
            }
            "--arrival-secs" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.arrival_secs = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--tenants" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_tenants(&v) {
                    Some(t) => opts.tenants = t,
                    None => {
                        eprintln!(
                            "bad tenant spec {v:?} (expected name:weight[,name:weight...] \
                             with unique names and positive weights)"
                        );
                        usage()
                    }
                }
            }
            "--faults" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read fault script {path}: {e}");
                    exit(2)
                });
                let script = FaultScript::parse_toml(&text).unwrap_or_else(|e| {
                    eprintln!("bad fault script {path}: {e}");
                    exit(2)
                });
                opts.faults_label = Some(format!("{path} ({} events)", script.len()));
                opts.config.faults.script = script;
            }
            "--elastic" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read elasticity script {path}: {e}");
                    exit(2)
                });
                let elastic = ElasticConfig::parse_toml(&text).unwrap_or_else(|e| {
                    eprintln!("bad elasticity script {path}: {e}");
                    exit(2)
                });
                opts.elastic_label = Some(format!(
                    "{path} ({} pools, policy {})",
                    elastic.pools.len(),
                    elastic.policy.code()
                ));
                opts.config.elastic = elastic;
            }
            "--csv" => opts.csv = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--audit" => opts.audit = true,
            "--timeline" => opts.timeline = true,
            "--census" => opts.census = true,
            "--compare" => opts.compare = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if !opts.tenants.is_empty() && opts.jobs <= 1 {
        eprintln!("--tenants needs a stream: pass --jobs <n> with n > 1");
        usage()
    }
    opts
}

/// The stream tenants for `--jobs N`: the suite cycled starting at the
/// `--workload` selection.
fn stream_tenants(opts: &Options) -> Vec<Workload> {
    let start = Workload::ALL
        .iter()
        .position(|&w| w == opts.workload)
        .unwrap_or(0);
    (0..opts.jobs)
        .map(|i| Workload::ALL[(start + i) % Workload::ALL.len()])
        .collect()
}

/// Build the `--tenants` stream: the same cycled workloads and seeded
/// exponential arrival gaps as [`build_stream`], but each submission is
/// attributed to a named tenant drawn proportionally to its weight
/// (an independent seeded draw, so the arrival times match the
/// unweighted stream for the same seed).
fn build_weighted_stream(opts: &Options) -> MergedStream {
    let total: f64 = opts.tenants.iter().map(|t| t.weight).sum();
    let mut arrivals = RngFactory::new(opts.seed).stream("stream-arrivals");
    let mut picks = RngFactory::new(opts.seed).stream("tenant-picks");
    let mut stream = JobStream::new();
    let mut t = 0.0f64;
    for (i, &w) in stream_tenants(opts).iter().enumerate() {
        let (app, layout) = w.build(
            &opts.cluster,
            &RngFactory::new(opts.seed.wrapping_add(i as u64)),
        );
        let mut draw: f64 = picks.gen_range(0.0..total);
        let mut tenant = opts.tenants.len() - 1;
        for (j, spec) in opts.tenants.iter().enumerate() {
            if draw < spec.weight {
                tenant = j;
                break;
            }
            draw -= spec.weight;
        }
        stream.push_as(
            format!("{}/{}#{i}", opts.tenants[tenant].name, w.short()),
            app,
            layout,
            SimTime::from_secs_f64(t),
            TenantId(tenant),
        );
        let u: f64 = arrivals.gen_range(0.0..1.0);
        t += -opts.arrival_secs * (1.0 - u).ln();
    }
    stream.merge()
}

/// With `--tenants`, the RUPAM scheduler inherits the tenant weights as
/// weighted-fair shares (and any `@quota` caps as preemption-armed
/// ceilings); every other scheduler (and every run without the flag) is
/// passed through unchanged.
fn effective_sched(opts: &Options, sched: &Sched) -> Sched {
    if opts.tenants.is_empty() || !matches!(sched, Sched::Rupam) {
        return sched.clone();
    }
    Sched::RupamWith(RupamConfig {
        allocation: AllocationPolicy::WeightedFair,
        tenants: opts
            .tenants
            .iter()
            .map(|t| TenantSpec {
                weight: t.weight,
                quota: t.quota,
            })
            .collect(),
        ..RupamConfig::default()
    })
}

fn run_one(opts: &Options, sched: &Sched) -> bool {
    let sched = &effective_sched(opts, sched);
    let observe = opts.trace.is_some() || opts.audit;
    let sim_opts = SimOptions {
        trace_capacity: Some(DEFAULT_TRACE_CAPACITY),
        audit: opts.audit.then(AuditConfig::default),
    };
    let (report, observation) = if opts.jobs > 1 {
        let stream = if opts.tenants.is_empty() {
            build_stream(
                &opts.cluster,
                &stream_tenants(opts),
                opts.arrival_secs,
                opts.seed,
            )
        } else {
            build_weighted_stream(opts)
        };
        if observe {
            let (report, obs) = run_stream_observed_cfg(
                &opts.cluster,
                &stream,
                sched,
                opts.seed,
                &sim_opts,
                &opts.config,
            );
            (report, Some(obs))
        } else {
            (
                run_stream_cfg(&opts.cluster, &stream, sched, opts.seed, &opts.config),
                None,
            )
        }
    } else if observe {
        let (report, obs) = run_workload_observed_cfg(
            &opts.cluster,
            opts.workload,
            sched,
            opts.seed,
            &sim_opts,
            &opts.config,
        );
        (report, Some(obs))
    } else {
        (
            run_workload_cfg(&opts.cluster, opts.workload, sched, opts.seed, &opts.config),
            None,
        )
    };
    let waste = timeline::waste(&report);
    println!(
        "{:<6} | makespan {:>9} | completed {} | oom {} | exec-lost {} | spec {} (wins {}) \
         | gpu tasks {} | wasted {:.1}s",
        sched.label(),
        format!("{}", report.makespan),
        report.completed,
        report.oom_failures,
        report.executor_losses,
        report.speculative_launched,
        report.speculative_wins,
        report.gpu_task_count(),
        (waste.failed_secs + waste.race_secs).max(0.0),
    );
    if opts.faults_label.is_some() {
        let f = &report.faults;
        println!(
            "  faults: {} crash / {} restart / {} slowdown / {} dropout / {} flaky | \
             suspects {} deaths {} readmissions {} | killed {} recovered {} \
             (mean {:.1}s) | map outs recomputed {}",
            f.crashes,
            f.restarts,
            f.slowdowns,
            f.dropouts,
            f.flaky_windows,
            f.suspects,
            f.deaths,
            f.readmissions,
            f.tasks_killed,
            f.recoveries,
            f.mean_recovery_secs(),
            f.map_outputs_recomputed,
        );
    }
    if opts.elastic_label.is_some() {
        let c = &report.cost;
        println!(
            "  cost: ${:.4} (on-demand ${:.4} / spot ${:.4}) over {:.0} node-s | \
             provisions {} decommissions {} preemptions {}",
            c.total_cost(),
            c.on_demand_cost,
            c.spot_cost,
            c.total_node_secs(),
            c.provisions,
            c.decommissions,
            c.preemptions,
        );
    }
    if opts.jobs > 1 {
        for j in &report.jobs {
            match j.jct() {
                Some(jct) => println!(
                    "  job {:>2} {:<12} arrived {:>9} | jct {}",
                    j.job.index(),
                    j.name,
                    format!("{}", j.submitted_at),
                    jct
                ),
                None => println!(
                    "  job {:>2} {:<12} arrived {:>9} | unfinished",
                    j.job.index(),
                    j.name,
                    format!("{}", j.submitted_at)
                ),
            }
        }
        println!(
            "  JCT mean {:.1}s | p95 {:.1}s over {} jobs",
            report.jct_mean(),
            report.jct_p95(),
            report.jobs.len()
        );
        if !opts.tenants.is_empty() {
            for (tenant, mean) in report.tenant_jct_means() {
                let t = &opts.tenants[tenant.index()];
                println!(
                    "  tenant {:<8} (weight {:.1}) mean JCT {mean:.1}s",
                    t.name, t.weight
                );
            }
            println!("  Jain index over per-tenant mean JCTs: {:.3}", report.tenant_jain_jct());
        }
    }
    if opts.census {
        print!("{}", placement_census(&opts.cluster, &report));
    }
    if opts.timeline {
        let names: Vec<String> = opts.cluster.iter().map(|(_, n)| n.name.clone()).collect();
        print!("{}", timeline::render(&report, &names, 72));
    }
    if let Some(path) = &opts.csv {
        let csv = rupam_metrics::export::records_csv(&report);
        let file = format!("{path}.{}.csv", sched.label().to_lowercase());
        match std::fs::write(&file, csv) {
            Ok(()) => println!("wrote task records to {file}"),
            Err(e) => eprintln!("could not write {file}: {e}"),
        }
    }
    let mut clean = true;
    if let Some(obs) = observation {
        if let (Some(path), Some(trace)) = (&opts.trace, obs.trace.as_ref()) {
            let file = format!("{path}.{}.csv", sched.label().to_lowercase());
            match std::fs::write(&file, rupam_metrics::export::trace_csv(trace)) {
                Ok(()) => println!(
                    "wrote {} trace events to {file} (digest {:016x}, {} dropped)",
                    trace.len(),
                    trace.digest(),
                    trace.dropped()
                ),
                Err(e) => eprintln!("could not write {file}: {e}"),
            }
        }
        if opts.audit {
            if obs.violations.is_empty() {
                println!("audit: every offer round satisfied the launch invariants");
            } else {
                clean = false;
                println!("audit: {} violations", obs.violations.len());
                for v in &obs.violations {
                    println!("  round {:>5} [{}] {}", v.round, v.check, v.detail);
                }
            }
        }
    }
    clean
}

fn main() {
    let opts = parse_args();
    if opts.jobs > 1 {
        let tenants: Vec<&str> = stream_tenants(&opts).iter().map(|w| w.short()).collect();
        println!(
            "cluster: {} | stream: {} (mean gap {:.0}s) | seed {}",
            opts.cluster_label,
            tenants.join("+"),
            opts.arrival_secs,
            opts.seed
        );
        if !opts.tenants.is_empty() {
            let mix: Vec<String> = opts
                .tenants
                .iter()
                .map(|t| match t.quota {
                    Some(q) => format!("{}:{:.0}@{q}", t.name, t.weight),
                    None => format!("{}:{:.0}", t.name, t.weight),
                })
                .collect();
            println!("tenants: {} (weighted arrival shares)", mix.join(", "));
        }
    } else {
        println!(
            "cluster: {} | workload: {} ({}) | seed {}",
            opts.cluster_label,
            opts.workload.name(),
            opts.workload.input_description(),
            opts.seed
        );
    }
    if let Some(label) = &opts.faults_label {
        println!("faults: {label}");
    }
    if let Some(label) = &opts.elastic_label {
        println!("elastic: {label}");
    }
    let mut clean = true;
    if opts.compare {
        for sched in [Sched::Fifo, Sched::Spark, Sched::Rupam] {
            clean &= run_one(&opts, &sched);
        }
    } else {
        clean = run_one(&opts, &opts.scheduler.clone());
    }
    if !clean {
        exit(1);
    }
}
