//! # rupam-suite
//!
//! Umbrella crate for the RUPAM reproduction workspace. Re-exports the
//! public API of every member crate so examples and downstream users can
//! depend on a single crate:
//!
//! ```
//! use rupam_suite::prelude::*;
//! ```
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory.

pub use rupam as core;
pub use rupam_bench as bench;
pub use rupam_cluster as cluster;
pub use rupam_dag as dag;
pub use rupam_exec as exec;
pub use rupam_metrics as metrics;
pub use rupam_simcore as simcore;
pub use rupam_workloads as workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude;
