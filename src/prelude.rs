//! One-stop imports for examples, tests and downstream code.

pub use rupam_simcore::{ByteSize, RngFactory, SimDuration, SimTime};
