//! Quickstart: run one workload on the paper's Hydra cluster under both
//! stock Spark and RUPAM, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rupam_bench::{run_workload, Sched};
use rupam_cluster::ClusterSpec;
use rupam_workloads::Workload;

fn main() {
    // the paper's 12-node heterogeneous cluster (Table II)
    let cluster = ClusterSpec::hydra();
    println!(
        "Cluster: {} nodes, {} cores, {} total memory\n",
        cluster.len(),
        cluster.total_cores(),
        cluster.total_mem()
    );

    let workload = Workload::KMeans;
    println!(
        "Workload: {} ({})",
        workload.name(),
        workload.input_description()
    );

    for sched in [Sched::Spark, Sched::Rupam] {
        let report = run_workload(&cluster, workload, &sched, 42);
        println!(
            "\n{:<6} makespan {:>8}  | tasks {:>4} | OOM failures {} | executor losses {} \
             | speculative copies {} (wins {}) | GPU tasks {}",
            sched.label(),
            format!("{}", report.makespan),
            report.total_attempts(),
            report.oom_failures,
            report.executor_losses,
            report.speculative_launched,
            report.speculative_wins,
            report.gpu_task_count(),
        );
        let [process, node, rack, any] = report.locality_counts();
        println!(
            "       locality: {process} PROCESS_LOCAL, {node} NODE_LOCAL, {rack} RACK_LOCAL, {any} ANY"
        );
    }
}
