//! Reproduce the paper's §II-B motivation study on the two-node cluster:
//! Fig. 2 (an application needs different resources at different stages)
//! and Fig. 3 (tasks within one stage differ wildly, and a locality-only
//! scheduler mismatches them against heterogeneous nodes).

use rupam_bench::motivation;
use rupam_bench::SEEDS;

fn main() {
    println!(
        "Two-node motivation cluster: node-1 = fast CPU / 1 GbE, node-2 = slow CPU / 10 GbE\n"
    );

    // Fig. 2 — 4K×4K matrix multiplication resource phases
    let (cluster, report) = motivation::fig2_run(SEEDS[0]);
    motivation::fig2_table(&cluster, &report, 16).print();
    println!(
        "\nNote the phase structure: CPU spikes early (parsing) and late (multiply),\n\
         memory ramps through the tile stages, network and disk writes peak at the\n\
         shuffles — no single static resource allocation fits all of it.\n"
    );

    // Fig. 3 — PageRank task skew under stock Spark
    let (cluster, report) = motivation::fig3_run(SEEDS[0]);
    motivation::fig3_table(&cluster, &report).print();
    println!(
        "\nWithin a single run the slowest successful task took {:.1}x the fastest\n\
         (the paper observed up to 31x). Stock Spark placed tasks by locality only,\n\
         so compute-heavy tasks pile onto whichever node holds their blocks.",
        motivation::fig3_duration_spread(&report)
    );
}
