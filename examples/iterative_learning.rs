//! The paper's key dynamic (Fig. 6): RUPAM's task-characteristics DB
//! makes iterative workloads faster the longer they run — the first
//! iteration explores, later iterations exploit.
//!
//! This example sweeps Logistic Regression iteration counts and prints
//! the speedup curve, then inspects what the Task Manager actually
//! learned about one gradient task.

use rupam::db::TaskKey;
use rupam::RupamScheduler;
use rupam_cluster::ClusterSpec;
use rupam_exec::{simulate, SimConfig, SimInput};
use rupam_simcore::RngFactory;
use rupam_workloads::lr::{self, LrParams};

fn main() {
    let cluster = ClusterSpec::hydra();
    let config = SimConfig::default();
    let seed = 7;

    println!("LR speedup vs iteration count (cf. paper Fig. 6):\n");
    println!(
        "{:>10} | {:>10} | {:>10} | {:>8}",
        "iterations", "Spark (s)", "RUPAM (s)", "speedup"
    );
    println!("{}", "-".repeat(48));
    for iterations in [1usize, 2, 4, 8, 16] {
        let params = LrParams {
            iterations,
            ..LrParams::default()
        };
        let (app, layout) = lr::build(&cluster, &RngFactory::new(seed), &params);
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &config,
            seed,
        };

        let mut spark = rupam::SparkScheduler::with_defaults();
        let spark_secs = simulate(&input, &mut spark).makespan.as_secs_f64();
        let mut rupam = RupamScheduler::with_defaults();
        let rupam_secs = simulate(&input, &mut rupam).makespan.as_secs_f64();
        println!(
            "{iterations:>10} | {spark_secs:>10.1} | {rupam_secs:>10.1} | {:>7.2}x",
            spark_secs / rupam_secs
        );
    }

    // peek into DB_task_char after a full run
    let params = LrParams {
        iterations: 8,
        ..LrParams::default()
    };
    let (app, layout) = lr::build(&cluster, &RngFactory::new(seed), &params);
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &config,
        seed,
    };
    let mut rupam = RupamScheduler::with_defaults();
    let _ = simulate(&input, &mut rupam);
    if let Some(char) = rupam.tm().db().read(&TaskKey::new("lr/points", 0)) {
        println!(
            "\nDB_task_char[lr/points, 0] after the run:\n  runs: {}\n  last bottleneck: {:?}\n  \
             bottlenecks observed (historyresource): {}\n  best executor: {:?}\n  peak memory: {}",
            char.runs,
            char.last_bottleneck,
            char.history_size(),
            char.best
                .map(|(n, s)| format!("{} @ {:.1}s", cluster.node(n).name, s)),
            char.peak_mem,
        );
    }
}
