//! §III-C3 in action: memory stragglers and speculative rescue.
//!
//! Runs PageRank — whose hot, power-law partitions overwhelm stock
//! Spark's uniform 14 GB executors — and prints the failure/rescue
//! ledger for both schedulers: task-level OOMs, executor (worker JVM)
//! losses, RUPAM's pre-emptive memory-straggler relocations, and
//! speculative copies with their win rate.

use rupam_bench::{run_workload, Sched};
use rupam_cluster::ClusterSpec;
use rupam_metrics::record::AttemptOutcome;
use rupam_workloads::Workload;

fn main() {
    let cluster = ClusterSpec::hydra();

    println!(
        "PageRank ({}) on Hydra:\n",
        Workload::PageRank.input_description()
    );
    for sched in [Sched::Spark, Sched::Rupam] {
        let report = run_workload(&cluster, Workload::PageRank, &sched, 101);
        let relocations = report
            .records
            .iter()
            .filter(|r| r.outcome == AttemptOutcome::MemoryStragglerKilled)
            .count();
        let wasted: f64 = report
            .records
            .iter()
            .filter(|r| r.outcome.is_failure())
            .map(|r| r.duration().as_secs_f64())
            .sum();
        println!("{}", "-".repeat(60));
        println!("{:<22} {}", "scheduler", sched.label());
        println!("{:<22} {}", "makespan", report.makespan);
        println!("{:<22} {}", "completed", report.completed);
        println!("{:<22} {}", "task OOM failures", report.oom_failures);
        println!("{:<22} {}", "executor JVM losses", report.executor_losses);
        println!("{:<22} {}", "straggler relocations", relocations);
        println!(
            "{:<22} {} launched, {} won the race",
            "speculative copies", report.speculative_launched, report.speculative_wins
        );
        println!("{:<22} {:.1}s", "work lost to failures", wasted);
    }
    println!("{}", "-".repeat(60));
    println!(
        "\nRUPAM checks `peakmemory <= freememory` before dispatch (Algorithm 2)\n\
         and relocates the hungriest task when a node runs low — so the JVM-\n\
         killing overcommit that stock Spark walks into never materialises."
    );
}
