//! Beyond the paper's suite: run the extra SparkBench-style workloads
//! (ALS, WordCount, SVM) under FIFO, stock Spark and RUPAM, and render a
//! per-node execution timeline for one of them.

use rupam_bench::{run_app, Sched};
use rupam_cluster::ClusterSpec;
use rupam_metrics::timeline;
use rupam_simcore::RngFactory;
use rupam_workloads::extra::{als, svm, wordcount, AlsParams, SvmParams, WordCountParams};

fn main() {
    let cluster = ClusterSpec::hydra();
    let rngf = RngFactory::new(77);

    let builds = vec![
        ("ALS", als(&cluster, &rngf, &AlsParams::default())),
        (
            "WordCount",
            wordcount(&cluster, &rngf, &WordCountParams::default()),
        ),
        ("SVM", svm(&cluster, &rngf, &SvmParams::default())),
    ];

    println!(
        "{:<10} | {:>9} | {:>9} | {:>9} | {:>8} | {:>8}",
        "workload", "FIFO (s)", "Spark (s)", "RUPAM (s)", "vs FIFO", "vs Spark"
    );
    println!("{}", "-".repeat(68));
    for (name, (app, layout)) in &builds {
        let fifo = run_app(&cluster, app, layout, &Sched::Fifo, 77)
            .makespan
            .as_secs_f64();
        let spark = run_app(&cluster, app, layout, &Sched::Spark, 77)
            .makespan
            .as_secs_f64();
        let rupam = run_app(&cluster, app, layout, &Sched::Rupam, 77)
            .makespan
            .as_secs_f64();
        println!(
            "{name:<10} | {fifo:>9.1} | {spark:>9.1} | {rupam:>9.1} | {:>7.2}x | {:>7.2}x",
            fifo / rupam,
            spark / rupam
        );
    }

    // timeline of the SVM run under RUPAM: broadcast pulls + gradient
    // waves are clearly visible
    let (app, layout) = &builds[2].1;
    let report = run_app(&cluster, app, layout, &Sched::Rupam, 77);
    let names: Vec<String> = cluster.iter().map(|(_, n)| n.name.clone()).collect();
    println!();
    print!("{}", timeline::render(&report, &names, 72));
    let w = timeline::waste(&report);
    println!(
        "\nwasted work: {:.1}s in {} failed attempts, {:.1}s in losing race copies",
        w.failed_secs.max(0.0),
        w.failed_attempts,
        w.race_secs.max(0.0)
    );
}
