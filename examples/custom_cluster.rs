//! Define your own heterogeneous cluster and workload, and watch where
//! each scheduler places the tasks.
//!
//! Builds a 6-node cluster with a fast-CPU tier, a big-memory tier and a
//! GPU node, submits a mixed application (compute stage + memory-hungry
//! shuffle stage + GPU-friendly stage), and prints per-class placement
//! under stock Spark vs RUPAM.

use std::collections::BTreeMap;

use rupam_bench::{run_app, Sched};
use rupam_cluster::{ClusterSpec, DiskSpec, NodeSpec};
use rupam_dag::app::StageKind;
use rupam_dag::data::DataLayout;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

fn cluster() -> ClusterSpec {
    let mut nodes = Vec::new();
    for i in 0..3 {
        nodes.push(NodeSpec {
            name: format!("fast{i}"),
            class: "fast-cpu".into(),
            cores: 8,
            cpu_ghz: 3.6,
            mem: ByteSize::gib(16),
            net_bw: 125e6,
            disk: DiskSpec::sata_ssd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 0,
        });
    }
    for i in 0..2 {
        nodes.push(NodeSpec {
            name: format!("bigmem{i}"),
            class: "big-mem".into(),
            cores: 24,
            cpu_ghz: 1.0,
            mem: ByteSize::gib(96),
            net_bw: 1.25e9,
            disk: DiskSpec::sata_hdd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 1,
        });
    }
    nodes.push(NodeSpec {
        name: "gpubox".into(),
        class: "gpu".into(),
        cores: 12,
        cpu_ghz: 1.4,
        mem: ByteSize::gib(32),
        net_bw: 125e6,
        disk: DiskSpec::sata_hdd(),
        gpus: 2,
        gpu_gcps: 25.0,
        rack: 1,
    });
    ClusterSpec::new(nodes)
}

fn app(cluster: &ClusterSpec, seed: u64) -> (rupam_dag::Application, DataLayout) {
    let mut rng = RngFactory::new(seed).stream("custom");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &[ByteSize::mib(128); 12], 2, &mut rng);

    let mut b = AppBuilder::new("custom-mixed");
    // run the pipeline twice so RUPAM gets one learning pass
    for round in 0..2 {
        let j = b.begin_job();
        let crunch: Vec<TaskTemplate> = (0..12)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute: 30.0,
                    input_bytes: ByteSize::mib(128),
                    shuffle_write: ByteSize::mib(64),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            })
            .collect();
        let crunch = b.add_stage(
            j,
            format!("crunch r{round}"),
            "mix/crunch",
            StageKind::ShuffleMap,
            vec![],
            crunch,
        );
        let join: Vec<TaskTemplate> = (0..6)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 5.0,
                    shuffle_read: ByteSize::mib(128),
                    shuffle_write: ByteSize::mib(32),
                    peak_mem: ByteSize::gib(10), // memory-hungry hash join
                    ..TaskDemand::default()
                },
            })
            .collect();
        let join = b.add_stage(
            j,
            format!("join r{round}"),
            "mix/join",
            StageKind::ShuffleMap,
            vec![crunch],
            join,
        );
        let score: Vec<TaskTemplate> = (0..6)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 20.0,
                    gpu_kernels: 18.0, // BLAS-style scoring kernels
                    shuffle_read: ByteSize::mib(32),
                    output_bytes: ByteSize::mib(8),
                    peak_mem: ByteSize::gib(1),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(
            j,
            format!("score r{round}"),
            "mix/score",
            StageKind::Result,
            vec![join],
            score,
        );
    }
    (b.build(), layout)
}

fn main() {
    let cluster = cluster();
    let (application, layout) = app(&cluster, 11);

    for sched in [Sched::Spark, Sched::Rupam] {
        let report = run_app(&cluster, &application, &layout, &sched, 11);
        println!(
            "== {} | makespan {} | GPU tasks {} ==",
            sched.label(),
            report.makespan,
            report.gpu_task_count()
        );
        // placement census per (stage template, node class)
        let mut census: BTreeMap<(rupam_simcore::Sym, String), usize> = BTreeMap::new();
        for r in report.records.iter().filter(|r| r.outcome.is_success()) {
            *census
                .entry((r.template_key, cluster.node(r.node).class.clone()))
                .or_default() += 1;
        }
        for ((template, class), n) in census {
            println!("   {template:<12} -> {class:<9} x{n}");
        }
        println!();
    }
    println!("Expected: RUPAM routes mix/crunch to fast-cpu, mix/join to big-mem,");
    println!("and mix/score to the gpubox in round 2 — stock Spark spreads blindly.");
}
