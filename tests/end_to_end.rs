//! End-to-end integration: every suite workload runs to completion on the
//! paper's Hydra cluster under both schedulers, respects physical lower
//! bounds, and stays deterministic.

use rupam_bench::{run_workload, Sched};
use rupam_cluster::ClusterSpec;
use rupam_dag::lineage::ideal_lower_bound;
use rupam_simcore::RngFactory;
use rupam_workloads::Workload;

/// Cheap per-test workloads (SQL's 1 440 tasks are exercised separately).
const FAST_WORKLOADS: [Workload; 5] = [
    Workload::TeraSort,
    Workload::GramianMatrix,
    Workload::PageRank,
    Workload::TriangleCount,
    Workload::KMeans,
];

#[test]
fn every_workload_completes_under_both_schedulers() {
    let cluster = ClusterSpec::hydra();
    for w in Workload::ALL {
        for sched in [Sched::Spark, Sched::Rupam] {
            let report = run_workload(&cluster, w, &sched, 101);
            assert!(
                report.completed,
                "{w} under {} did not complete (oom={}, lost={})",
                sched.label(),
                report.oom_failures,
                report.executor_losses
            );
            // every task succeeded exactly once
            let (app, _) = w.build(&cluster, &RngFactory::new(101));
            let mut winners: Vec<_> = report
                .records
                .iter()
                .filter(|r| r.outcome.is_success())
                .map(|r| r.task)
                .collect();
            winners.sort();
            winners.dedup();
            assert_eq!(
                winners.len(),
                app.total_tasks(),
                "{w}/{}: tasks completed once each",
                sched.label()
            );
        }
    }
}

#[test]
fn makespans_respect_ideal_lower_bounds() {
    let cluster = ClusterSpec::hydra();
    for w in FAST_WORKLOADS {
        let (app, _) = w.build(&cluster, &RngFactory::new(7));
        let lb = ideal_lower_bound(&app, &cluster);
        for sched in [Sched::Spark, Sched::Rupam] {
            let report = run_workload(&cluster, w, &sched, 7);
            assert!(
                report.makespan >= lb,
                "{w}/{}: makespan {} beats the physical lower bound {}",
                sched.label(),
                report.makespan,
                lb
            );
        }
    }
}

#[test]
fn full_runs_are_deterministic() {
    let cluster = ClusterSpec::hydra();
    for sched in [Sched::Spark, Sched::Rupam] {
        let a = run_workload(&cluster, Workload::PageRank, &sched, 303);
        let b = run_workload(&cluster, Workload::PageRank, &sched, 303);
        assert_eq!(
            a.makespan,
            b.makespan,
            "{} PR not deterministic",
            sched.label()
        );
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.oom_failures, b.oom_failures);
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.task, y.task);
            assert_eq!(x.node, y.node);
            assert_eq!(x.finished_at, y.finished_at);
            assert_eq!(x.outcome, y.outcome);
        }
    }
}

#[test]
fn seeds_change_outcomes() {
    let cluster = ClusterSpec::hydra();
    let a = run_workload(&cluster, Workload::TeraSort, &Sched::Spark, 1);
    let b = run_workload(&cluster, Workload::TeraSort, &Sched::Spark, 2);
    assert_ne!(
        a.makespan, b.makespan,
        "different seeds should produce different placements/makespans"
    );
}

#[test]
fn locality_counts_account_for_every_attempt() {
    let cluster = ClusterSpec::hydra();
    for sched in [Sched::Spark, Sched::Rupam] {
        let report = run_workload(&cluster, Workload::TriangleCount, &sched, 11);
        let total: usize = report.locality_counts().iter().sum();
        assert_eq!(total, report.total_attempts());
        let (app, _) = Workload::TriangleCount.build(&cluster, &RngFactory::new(11));
        assert!(total >= app.total_tasks(), "{}", sched.label());
    }
}

#[test]
fn utilization_histories_cover_the_run() {
    let cluster = ClusterSpec::hydra();
    let report = run_workload(&cluster, Workload::KMeans, &Sched::Rupam, 5);
    // every node reported something, and at least one node shows real load
    let mut any_busy = false;
    for i in 0..cluster.len() {
        let h = report.monitor.history(
            rupam_cluster::NodeId(i),
            rupam_cluster::monitor::MetricKey::CpuUtil,
        );
        if h.points().iter().any(|p| p.1 > 0.5) {
            any_busy = true;
        }
    }
    assert!(any_busy, "no node ever exceeded 50% CPU during KMeans");
}
