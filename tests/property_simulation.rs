//! Property-based cross-crate tests: for arbitrary small applications on
//! arbitrary heterogeneous clusters, both schedulers must satisfy the
//! simulation's global invariants.

use proptest::prelude::*;

use rupam_bench::{run_app, Sched};
use rupam_cluster::{ClusterSpec, DiskSpec, NodeSpec};
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::lineage::ideal_lower_bound;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

/// A generated cluster description: per node (cores, ghz ×10, mem GiB,
/// fast-nic?, ssd?, gpus).
fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    proptest::collection::vec(
        (
            2u32..16,
            8u64..40,
            8u64..64,
            any::<bool>(),
            any::<bool>(),
            0u32..2,
        ),
        2..5,
    )
    .prop_map(|nodes| {
        let specs = nodes
            .into_iter()
            .enumerate()
            .map(|(i, (cores, ghz10, mem, fast_nic, ssd, gpus))| NodeSpec {
                name: format!("n{i}"),
                class: format!("class{}", i % 2),
                cores,
                cpu_ghz: ghz10 as f64 / 10.0,
                mem: ByteSize::gib(mem),
                net_bw: if fast_nic { 1.25e9 } else { 125e6 },
                disk: if ssd {
                    DiskSpec::sata_ssd()
                } else {
                    DiskSpec::sata_hdd()
                },
                gpus,
                gpu_gcps: if gpus > 0 { 20.0 } else { 0.0 },
                rack: i % 2,
            })
            .collect();
        ClusterSpec::new(specs)
    })
}

/// A generated two-stage application: (map tasks, reduce tasks, compute,
/// shuffle MiB, peak MiB, gpu?).
fn arb_app_params() -> impl Strategy<Value = (usize, usize, f64, u64, u64, bool)> {
    (
        1usize..12,
        1usize..6,
        1.0f64..20.0,
        1u64..128,
        64u64..2048,
        any::<bool>(),
    )
}

fn build_app(
    cluster: &ClusterSpec,
    seed: u64,
    (maps, reduces, compute, shuffle_mib, peak_mib, gpu): (usize, usize, f64, u64, u64, bool),
) -> (Application, DataLayout) {
    let mut rng = RngFactory::new(seed).stream("prop/layout");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &vec![ByteSize::mib(64); maps], 2, &mut rng);
    let mut b = AppBuilder::new("prop-app");
    let j = b.begin_job();
    let map_tasks: Vec<TaskTemplate> = (0..maps)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Hdfs(blocks[i]),
            demand: TaskDemand {
                compute,
                gpu_kernels: if gpu { compute * 0.8 } else { 0.0 },
                input_bytes: ByteSize::mib(64),
                shuffle_write: ByteSize::mib(shuffle_mib),
                peak_mem: ByteSize::mib(peak_mib),
                ..TaskDemand::default()
            },
        })
        .collect();
    let map_stage = b.add_stage(j, "m", "prop/m", StageKind::ShuffleMap, vec![], map_tasks);
    let reduce_tasks: Vec<TaskTemplate> = (0..reduces)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Shuffle,
            demand: TaskDemand {
                compute: compute / 2.0,
                shuffle_read: ByteSize::mib(shuffle_mib * maps as u64 / reduces as u64),
                output_bytes: ByteSize::mib(1),
                peak_mem: ByteSize::mib(peak_mib / 2),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(
        j,
        "r",
        "prop/r",
        StageKind::Result,
        vec![map_stage],
        reduce_tasks,
    );
    (b.build(), layout)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Both schedulers finish arbitrary apps, complete every task exactly
    /// once, never beat the physical lower bound, and account for every
    /// attempt in the locality census.
    #[test]
    fn prop_simulation_invariants(
        cluster in arb_cluster(),
        params in arb_app_params(),
        seed in 0u64..1_000,
    ) {
        let (app, layout) = build_app(&cluster, seed, params);
        let lb = ideal_lower_bound(&app, &cluster);
        for sched in [Sched::Spark, Sched::Rupam] {
            let report = run_app(&cluster, &app, &layout, &sched, seed);
            if !report.completed {
                // §IV-B: "Some workloads … are memory intensive such that
                // default Spark fails with memory error in some runs … In
                // contrast, RUPAM finishes without memory errors". A
                // generated app whose co-scheduled tasks overflow Spark's
                // uniform executors reproduces exactly that documented
                // failure mode (executor kill → blind requeue → kill), so
                // a Spark abort is admissible iff it is memory-attributed.
                // RUPAM must still always complete (see EXPERIMENTS.md).
                prop_assert!(
                    matches!(sched, Sched::Spark),
                    "{} did not complete", sched.label()
                );
                prop_assert!(
                    report.oom_failures + report.executor_losses > 0,
                    "Spark abort without any memory-attributed failure"
                );
                continue;
            }
            prop_assert!(report.makespan >= lb,
                "{}: makespan {} < lower bound {}", sched.label(), report.makespan, lb);
            let mut winners: Vec<_> = report
                .records
                .iter()
                .filter(|r| r.outcome.is_success())
                .map(|r| r.task)
                .collect();
            winners.sort();
            winners.dedup();
            prop_assert_eq!(winners.len(), app.total_tasks());
            let census: usize = report.locality_counts().iter().sum();
            prop_assert_eq!(census, report.total_attempts());
            // reduce cannot start before the last map finished
            let last_map = report.records.iter()
                .filter(|r| r.template_key == "prop/m" && r.outcome.is_success())
                .map(|r| r.finished_at).max().unwrap();
            let first_reduce = report.records.iter()
                .filter(|r| r.template_key == "prop/r")
                .map(|r| r.launched_at).min().unwrap();
            prop_assert!(first_reduce >= last_map, "shuffle barrier violated");
        }
    }

    /// Simulations are a pure function of their inputs.
    #[test]
    fn prop_simulation_deterministic(
        params in arb_app_params(),
        seed in 0u64..1_000,
    ) {
        let cluster = ClusterSpec::two_node_motivation();
        let (app, layout) = build_app(&cluster, seed, params);
        for sched in [Sched::Spark, Sched::Rupam] {
            let a = run_app(&cluster, &app, &layout, &sched, seed);
            let b = run_app(&cluster, &app, &layout, &sched, seed);
            prop_assert_eq!(a.makespan, b.makespan);
            prop_assert_eq!(a.records.len(), b.records.len());
        }
    }
}
