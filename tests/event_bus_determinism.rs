//! Integration tests of the engine event bus: dispatch order must be a
//! pure function of the subscriber set (registration order invisible),
//! caller-supplied subscribers must see the exact event stream the
//! official trace emitter sees, and — in the style of the corrupted
//! scheduler in `decision_audit.rs` — a deliberately lossy subscriber
//! must produce a digest that does NOT match, proving the equivalence
//! check has teeth.

use std::cell::RefCell;
use std::rc::Rc;

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{AppBuilder, Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_exec::testutil::FifoScheduler;
use rupam_exec::{
    simulate_observed, simulate_observed_with, BusStage, EngineEvent, EventCtx, SimConfig,
    SimInput, SimOptions, Subscriber,
};
use rupam_metrics::trace::{TraceBuffer, TraceEvent};
use rupam_simcore::units::ByteSize;

fn tiny_app(tasks_per_stage: usize) -> (Application, DataLayout) {
    let mut b = AppBuilder::new("bus-tiny");
    let j = b.begin_job();
    let mk = |n: usize, c: f64, sw: u64, sr: u64| {
        (0..n)
            .map(|i| TaskTemplate {
                index: i,
                input: if sr > 0 {
                    InputSource::Shuffle
                } else {
                    InputSource::Generated
                },
                demand: TaskDemand {
                    compute: c,
                    shuffle_write: ByteSize::mib(sw),
                    shuffle_read: ByteSize::mib(sr),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            })
            .collect::<Vec<_>>()
    };
    let m = b.add_stage(
        j,
        "map",
        "bus/map",
        StageKind::ShuffleMap,
        vec![],
        mk(tasks_per_stage, 4.0, 16, 0),
    );
    b.add_stage(
        j,
        "reduce",
        "bus/reduce",
        StageKind::Result,
        vec![m],
        mk(2, 2.0, 0, 16),
    );
    (b.build(), DataLayout::new())
}

/// A do-nothing subscriber with a configurable (stage, name); used to
/// prove that attaching observers never perturbs a run.
struct Noop {
    name: &'static str,
    stage: BusStage,
}

impl Subscriber for Noop {
    fn name(&self) -> &'static str {
        self.name
    }
    fn stage(&self) -> BusStage {
        self.stage
    }
    fn on_event(&mut self, _ctx: &EventCtx, _event: &EngineEvent) {}
}

/// Mirrors [`EngineEvent::trace_kind`] into its own digest-only buffer,
/// shared out through an `Rc` so the test can read it after the run.
/// When `drop_every` is set, every Nth event is silently skipped — the
/// "corrupted subscriber" of the meta-test.
struct ShadowTrace {
    buf: Rc<RefCell<TraceBuffer>>,
    drop_every: Option<usize>,
    seen: usize,
}

impl ShadowTrace {
    fn new(drop_every: Option<usize>) -> (Self, Rc<RefCell<TraceBuffer>>) {
        let buf = Rc::new(RefCell::new(TraceBuffer::new(0)));
        (
            ShadowTrace {
                buf: Rc::clone(&buf),
                drop_every,
                seen: 0,
            },
            buf,
        )
    }
}

impl Subscriber for ShadowTrace {
    fn name(&self) -> &'static str {
        "shadow"
    }
    fn stage(&self) -> BusStage {
        BusStage::Emit
    }
    fn is_trace_sink(&self) -> bool {
        true
    }
    fn on_event(&mut self, ctx: &EventCtx, event: &EngineEvent) {
        self.seen += 1;
        if let Some(n) = self.drop_every {
            if self.seen.is_multiple_of(n) {
                return;
            }
        }
        if let Some(kind) = event.trace_kind() {
            self.buf.borrow_mut().record(TraceEvent {
                at: ctx.at,
                round: ctx.round,
                kind,
            });
        }
    }
}

fn run_traced(extra: Vec<Box<dyn Subscriber>>) -> (rupam_metrics::report::RunReport, TraceBuffer) {
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(8);
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 33,
    };
    let mut sched = FifoScheduler::new();
    let (report, obs) = simulate_observed_with(&input, &mut sched, &SimOptions::traced(), extra);
    (report, obs.trace.expect("traced run keeps a trace"))
}

/// The observable outcome of a run — report and official trace digest —
/// is identical no matter how many extra subscribers are attached or in
/// what order they were registered.
#[test]
fn subscriber_registration_order_is_invisible() {
    let noop = |name, stage| -> Box<dyn Subscriber> { Box::new(Noop { name, stage }) };
    let (base_report, base_trace) = run_traced(Vec::new());
    // three registration orders of the same subscriber set
    let orders: [[&'static str; 3]; 3] = [
        ["alpha", "beta", "gamma"],
        ["gamma", "alpha", "beta"],
        ["beta", "gamma", "alpha"],
    ];
    let stage_of = |name| match name {
        "alpha" => BusStage::Emit,
        "beta" => BusStage::Statistics,
        _ => BusStage::Audit,
    };
    for order in orders {
        let shuffled: Vec<Box<dyn Subscriber>> =
            order.iter().map(|&n| noop(n, stage_of(n))).collect();
        let (report, trace) = run_traced(shuffled);
        assert_eq!(report.makespan, base_report.makespan, "order {order:?}");
        assert_eq!(report.records.len(), base_report.records.len());
        assert_eq!(
            trace.digest(),
            base_trace.digest(),
            "digest diverged for registration order {order:?}"
        );
        assert_eq!(trace.recorded(), base_trace.recorded());
    }
}

/// The bus itself sorts subscribers into canonical (stage, name) order
/// regardless of how they were registered.
#[test]
fn bus_dispatch_order_is_canonical() {
    use rupam_exec::EventBus;
    let orders: [[(&'static str, BusStage); 3]; 2] = [
        [
            ("alpha", BusStage::Emit),
            ("beta", BusStage::Statistics),
            ("gamma", BusStage::Audit),
        ],
        [
            ("gamma", BusStage::Audit),
            ("alpha", BusStage::Emit),
            ("beta", BusStage::Statistics),
        ],
    ];
    for order in orders {
        let mut bus = EventBus::new();
        for (name, stage) in order {
            bus.register(Box::new(Noop { name, stage }));
        }
        assert_eq!(
            bus.subscriber_names(),
            vec!["beta", "gamma", "alpha"],
            "Statistics < Audit < Emit, then name order"
        );
    }
}

/// A shadow subscriber that mirrors the canonical
/// [`EngineEvent::trace_kind`] projection reconstructs the official
/// trace digest byte-for-byte: the bus delivers the complete stream.
#[test]
fn shadow_subscriber_reconstructs_official_digest() {
    let (shadow, buf) = ShadowTrace::new(None);
    let (_report, official) = run_traced(vec![Box::new(shadow)]);
    let shadow_trace = buf.borrow();
    assert_eq!(
        shadow_trace.digest(),
        official.digest(),
        "shadow trace diverged from the official emitter"
    );
    assert_eq!(shadow_trace.recorded(), official.recorded());
    assert!(official.recorded() > 0, "trivial run traced nothing");
}

/// Meta-test: a corrupted subscriber that drops every 7th event must
/// NOT reproduce the official digest — i.e. the equivalence check above
/// can actually fail.
#[test]
fn corrupted_subscriber_is_caught() {
    let (shadow, buf) = ShadowTrace::new(Some(7));
    let (_report, official) = run_traced(vec![Box::new(shadow)]);
    let shadow_trace = buf.borrow();
    assert_ne!(
        shadow_trace.digest(),
        official.digest(),
        "a lossy shadow must not match the official digest"
    );
    assert!(shadow_trace.recorded() < official.recorded());
}

/// Attaching subscribers to an *untraced* run must not change the
/// report either (no derived-payload events are forced on).
#[test]
fn subscribers_do_not_perturb_untraced_runs() {
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(8);
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 33,
    };
    let mut a = FifoScheduler::new();
    let (plain, _) = simulate_observed(&input, &mut a, &SimOptions::default());
    let mut b = FifoScheduler::new();
    let (with_noop, _) = simulate_observed_with(
        &input,
        &mut b,
        &SimOptions::default(),
        vec![Box::new(Noop {
            name: "watcher",
            stage: BusStage::Statistics,
        })],
    );
    assert_eq!(plain.makespan, with_noop.makespan);
    assert_eq!(plain.records.len(), with_noop.records.len());
}
