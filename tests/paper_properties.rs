//! The paper's headline claims, as executable assertions (shapes, not
//! absolute numbers — see EXPERIMENTS.md for the full quantitative
//! comparison).

use rupam_bench::{run_workload, Sched};
use rupam_cluster::ClusterSpec;
use rupam_simcore::RngFactory;
use rupam_workloads::lr::{self, LrParams};
use rupam_workloads::Workload;

fn pair(w: Workload, seed: u64) -> (f64, f64) {
    let cluster = ClusterSpec::hydra();
    let spark = run_workload(&cluster, w, &Sched::Spark, seed)
        .makespan
        .as_secs_f64();
    let rupam = run_workload(&cluster, w, &Sched::Rupam, seed)
        .makespan
        .as_secs_f64();
    (spark, rupam)
}

#[test]
fn rupam_beats_spark_on_iterative_workloads() {
    // §IV-B: iterative workloads (LR, PR, TC, KMeans) gain the most
    for w in [
        Workload::LogisticRegression,
        Workload::KMeans,
        Workload::PageRank,
    ] {
        let (spark, rupam) = pair(w, 101);
        assert!(
            rupam < spark,
            "{w}: RUPAM ({rupam:.0}s) should beat Spark ({spark:.0}s)"
        );
    }
}

#[test]
fn single_iteration_gramian_is_near_parity() {
    // §IV-B: "GM only shows a negligible 1.4% performance improvement …
    // GM only has one iteration of computation, which makes it difficult
    // for RUPAM to test and determine an appropriate resource"
    let (spark, rupam) = pair(Workload::GramianMatrix, 101);
    let ratio = spark / rupam;
    assert!(
        (0.8..1.8).contains(&ratio),
        "GM should be roughly scheduler-neutral, got {ratio:.2}x"
    );
}

#[test]
fn lr_speedup_grows_with_iterations() {
    // Fig. 6: speedup rises with iteration count and never drops
    // meaningfully below 1×
    let cluster = ClusterSpec::hydra();
    let speedup_at = |iterations: usize| {
        let params = LrParams {
            iterations,
            ..LrParams::default()
        };
        let (app, layout) = lr::build(&cluster, &RngFactory::new(101), &params);
        let spark = rupam_bench::run_app(&cluster, &app, &layout, &Sched::Spark, 101)
            .makespan
            .as_secs_f64();
        let rupam = rupam_bench::run_app(&cluster, &app, &layout, &Sched::Rupam, 101)
            .makespan
            .as_secs_f64();
        spark / rupam
    };
    let s1 = speedup_at(1);
    let s8 = speedup_at(8);
    assert!(
        s8 > s1,
        "speedup must grow with iterations: s1={s1:.2} s8={s8:.2}"
    );
    assert!(
        s1 > 0.85,
        "RUPAM should roughly match Spark even at 1 iteration, got {s1:.2}"
    );
    assert!(
        s8 > 1.5,
        "by 8 iterations the DB should pay off, got {s8:.2}"
    );
}

#[test]
fn spark_suffers_memory_failures_on_pagerank_rupam_does_not() {
    // §IV-B: "Some workloads, such as PR, are memory intensive such that
    // default Spark fails with memory error in some runs … In contrast,
    // RUPAM finishes without memory errors"
    let cluster = ClusterSpec::hydra();
    let mut spark_failures = 0usize;
    let mut rupam_failures = 0usize;
    for seed in [101, 202, 303] {
        let s = run_workload(&cluster, Workload::PageRank, &Sched::Spark, seed);
        let r = run_workload(&cluster, Workload::PageRank, &Sched::Rupam, seed);
        spark_failures += s.oom_failures + s.executor_losses;
        rupam_failures += r.oom_failures + r.executor_losses;
    }
    assert!(spark_failures > 0, "Spark should hit memory trouble on PR");
    assert!(
        rupam_failures < spark_failures / 2,
        "RUPAM ({rupam_failures}) should suffer far fewer memory failures than Spark ({spark_failures})"
    );
}

#[test]
fn spark_keeps_more_process_local_tasks() {
    // Table V: "for all workloads, default Spark has more PROCESS_LOCAL
    // tasks than RUPAM … RUPAM trades locality for better matching
    // resources"
    let cluster = ClusterSpec::hydra();
    let spark = run_workload(&cluster, Workload::LogisticRegression, &Sched::Spark, 101);
    let rupam = run_workload(&cluster, Workload::LogisticRegression, &Sched::Rupam, 101);
    let s = spark.locality_counts();
    let r = rupam.locality_counts();
    assert!(
        s[0] >= r[0],
        "Spark PROCESS_LOCAL ({}) should be >= RUPAM's ({})",
        s[0],
        r[0]
    );
}

#[test]
fn rupam_balances_network_utilization_better_on_pagerank() {
    // Fig. 9: lower std-dev of per-node utilisation under RUPAM. Our
    // reproduction matches the paper's direction on the network axis
    // (RUPAM spreads the skewed shuffles); on the CPU axis RUPAM's
    // deliberate concentration of compute onto the fast tier raises the
    // across-node spread instead — recorded as a deviation in
    // EXPERIMENTS.md.
    use rupam_cluster::monitor::MetricKey;
    use rupam_simcore::SimDuration;
    let cluster = ClusterSpec::hydra();
    let spark = run_workload(&cluster, Workload::PageRank, &Sched::Spark, 101);
    let rupam = run_workload(&cluster, Workload::PageRank, &Sched::Rupam, 101);
    let s = spark.utilization_stddev_mean(MetricKey::NetMBps, SimDuration::from_secs(1));
    let r = rupam.utilization_stddev_mean(MetricKey::NetMBps, SimDuration::from_secs(1));
    assert!(
        r < s * 1.1,
        "RUPAM network spread ({r:.1} MB/s) should not exceed Spark's ({s:.1} MB/s)"
    );
    // CPU spread must at least stay the same order of magnitude
    let s_cpu = spark.utilization_stddev_mean(MetricKey::CpuUtil, SimDuration::from_secs(1));
    let r_cpu = rupam.utilization_stddev_mean(MetricKey::CpuUtil, SimDuration::from_secs(1));
    assert!(
        r_cpu < s_cpu * 3.0,
        "CPU spread blew up: {r_cpu:.3} vs {s_cpu:.3}"
    );
}

#[test]
fn rupam_uses_more_memory_on_average() {
    // Fig. 8b: "for memory, RUPAM shows a higher usage than default Spark
    // for all workloads" (dynamic executor sizing)
    use rupam_cluster::monitor::MetricKey;
    let cluster = ClusterSpec::hydra();
    let spark = run_workload(&cluster, Workload::Sql, &Sched::Spark, 101);
    let rupam = run_workload(&cluster, Workload::Sql, &Sched::Rupam, 101);
    let s = spark.avg_utilization(MetricKey::MemUsedGib);
    let r = rupam.avg_utilization(MetricKey::MemUsedGib);
    assert!(
        r > s * 0.9,
        "RUPAM mean memory use ({r:.1} GiB) should not be far below Spark's ({s:.1} GiB)"
    );
}

#[test]
fn gpu_workloads_reach_gpus_under_rupam() {
    let cluster = ClusterSpec::hydra();
    for w in [Workload::KMeans, Workload::GramianMatrix] {
        let report = run_workload(&cluster, w, &Sched::Rupam, 101);
        assert!(report.gpu_task_count() > 0, "{w}: no tasks ran on a GPU");
    }
}

#[test]
fn heterogeneity_awareness_is_harmless_on_a_homogeneous_cluster() {
    // control experiment: with nothing to exploit, RUPAM should roughly
    // match Spark rather than regress
    let cluster = ClusterSpec::homogeneous(12);
    let (app, layout) = Workload::TeraSort.build(&cluster, &RngFactory::new(42));
    let spark = rupam_bench::run_app(&cluster, &app, &layout, &Sched::Spark, 42)
        .makespan
        .as_secs_f64();
    let rupam = rupam_bench::run_app(&cluster, &app, &layout, &Sched::Rupam, 42)
        .makespan
        .as_secs_f64();
    assert!(
        rupam < spark * 1.35,
        "RUPAM ({rupam:.0}s) should not badly regress vs Spark ({spark:.0}s) on uniform hardware"
    );
}
