//! The fault-injection & recovery gate.
//!
//! Three properties, all non-negotiable (ISSUE 4 acceptance):
//!
//! 1. **Strict no-op** — an *empty* fault script produces byte-identical
//!    decision-trace digests to the plain default configuration, on
//!    every workload: the faults layer is invisible until scripted.
//! 2. **Replay determinism** — the same seed + the same chaos script
//!    (the committed `chaos-smoke.toml`) reproduce the same digest, and
//!    the incremental dispatcher stays decision-identical to the
//!    from-scratch rebuild *under faults* too.
//! 3. **No lost tasks** — every chaos run completes with an empty audit
//!    (the engine's terminal sweep reports any killed-but-never-
//!    relaunched task as a `lost-task` violation).
//!
//! Plus the meta-test: a hand-corrupted recovery decision (a launch
//! aimed at a detector-dead node) must trip the auditor.

use rupam::config::RupamConfig;
use rupam_bench::{run_workload_observed, run_workload_observed_cfg, Sched};
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{Application, StageId, StageKind};
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::{AppBuilder, TaskRef};
use rupam_exec::scheduler::{Command, NodeView, OfferInput, PendingTaskView};
use rupam_exec::{AuditConfig, InvariantAuditor, LaunchReason, SimConfig, SimOptions};
use rupam_faults::FaultScript;
use rupam_metrics::report::RunReport;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_workloads::Workload;

/// The committed CI chaos script — parsing it here also pins the TOML
/// dialect the README documents.
fn chaos_script() -> FaultScript {
    FaultScript::parse_toml(include_str!("../chaos-smoke.toml")).expect("chaos-smoke.toml parses")
}

fn digest(obs: &rupam_exec::SimObservation) -> u64 {
    obs.trace.as_ref().expect("trace enabled").digest()
}

/// Empty script ⇒ the faults layer never constructs a detector, never
/// schedules an event, never draws from its RNG stream: byte-identical
/// decisions to the default configuration, across the whole suite.
#[test]
fn empty_fault_script_is_a_strict_noop() {
    let cluster = ClusterSpec::hydra();
    let empty = SimConfig::with_faults(FaultScript::empty());
    for w in Workload::ALL {
        let (plain_rep, plain) =
            run_workload_observed(&cluster, w, &Sched::Rupam, 707, &SimOptions::audited());
        let (empty_rep, empty_obs) = run_workload_observed_cfg(
            &cluster,
            w,
            &Sched::Rupam,
            707,
            &SimOptions::audited(),
            &empty,
        );
        assert_eq!(
            digest(&plain),
            digest(&empty_obs),
            "{w:?}: empty fault script changed the decision trace"
        );
        assert_eq!(plain_rep.makespan, empty_rep.makespan);
        assert_eq!(
            empty_rep.faults,
            Default::default(),
            "{w:?}: spurious fault counters"
        );
    }
}

/// Same seed + same script ⇒ the same trace digest, twice over, with
/// every scripted fault kind actually firing.
#[test]
fn seeded_fault_runs_are_replay_deterministic() {
    let cluster = ClusterSpec::hydra();
    let config = SimConfig::with_faults(chaos_script());
    let (rep_a, obs_a) = run_workload_observed_cfg(
        &cluster,
        Workload::TeraSort,
        &Sched::Rupam,
        101,
        &SimOptions::audited(),
        &config,
    );
    let (rep_b, obs_b) = run_workload_observed_cfg(
        &cluster,
        Workload::TeraSort,
        &Sched::Rupam,
        101,
        &SimOptions::audited(),
        &config,
    );
    assert_eq!(digest(&obs_a), digest(&obs_b), "chaos replay diverged");
    assert_eq!(rep_a.makespan, rep_b.makespan);
    let f = &rep_a.faults;
    assert_eq!((f.crashes, f.restarts), (1, 1));
    assert_eq!((f.slowdowns, f.dropouts, f.flaky_windows), (1, 1, 1));
    assert!(
        f.deaths >= 1,
        "crash or dropout must cross the dead threshold"
    );
    assert!(
        f.readmissions >= 1,
        "restart/heartbeat resume must re-admit"
    );
    assert!(
        f.recoveries >= 1 && f.recovery_secs_total > 0.0,
        "lost work must be re-run: {f:?}"
    );
}

/// The `O(log n)` incremental dispatcher must stay decision-identical
/// to the from-scratch rebuild when nodes die, revive, and rankings
/// shrink and re-grow mid-run.
#[test]
fn incremental_path_matches_rebuild_under_faults() {
    let cluster = ClusterSpec::hydra();
    let config = SimConfig::with_faults(chaos_script());
    let rebuild = Sched::RupamWith(RupamConfig {
        incremental_queues: false,
        ..RupamConfig::default()
    });
    for w in [Workload::TeraSort, Workload::PageRank, Workload::Sql] {
        let (inc_rep, inc) = run_workload_observed_cfg(
            &cluster,
            w,
            &Sched::Rupam,
            303,
            &SimOptions::audited(),
            &config,
        );
        let (reb_rep, reb) =
            run_workload_observed_cfg(&cluster, w, &rebuild, 303, &SimOptions::audited(), &config);
        assert!(
            inc.violations.is_empty(),
            "{w:?} incremental: {:?}",
            inc.violations
        );
        assert!(
            reb.violations.is_empty(),
            "{w:?} rebuild: {:?}",
            reb.violations
        );
        assert_eq!(
            digest(&inc),
            digest(&reb),
            "{w:?}: dispatcher paths diverged under faults"
        );
        assert_eq!(inc_rep.makespan, reb_rep.makespan);
    }
}

fn assert_no_lost_tasks(w: Workload, report: &RunReport, obs: &rupam_exec::SimObservation) {
    assert!(report.completed, "{w:?}: chaos run failed to complete");
    assert!(
        obs.violations.is_empty(),
        "{w:?}: audit violations (incl. lost-task sweep): {:?}",
        obs.violations
    );
}

/// Every workload of the suite survives the full chaos script with all
/// work completed and an empty audit — the terminal sweep would flag
/// any killed-but-never-relaunched task as `lost-task`.
#[test]
fn chaos_runs_lose_no_tasks_across_suite() {
    let cluster = ClusterSpec::hydra();
    let config = SimConfig::with_faults(chaos_script());
    for w in Workload::ALL {
        for sched in [Sched::Rupam, Sched::Spark, Sched::Fifo] {
            let (report, obs) = run_workload_observed_cfg(
                &cluster,
                w,
                &sched,
                505,
                &SimOptions::audited(),
                &config,
            );
            assert_no_lost_tasks(w, &report, &obs);
        }
    }
}

// ---- meta-test: a corrupted recovery decision must trip the auditor ----

fn tiny_app() -> Application {
    let mut b = AppBuilder::new("meta");
    let j = b.begin_job();
    b.add_stage(
        j,
        "s0",
        "meta/s0",
        StageKind::Result,
        vec![],
        vec![TaskTemplate {
            index: 0,
            input: InputSource::Generated,
            demand: TaskDemand::default(),
        }],
    );
    b.build()
}

fn node_view(id: NodeId, mem: ByteSize, dead: bool) -> NodeView {
    NodeView {
        node: id,
        executor_mem: mem,
        mem_in_use: ByteSize::ZERO,
        free_mem: mem,
        running: vec![],
        cpu_util: 0.0,
        net_util: 0.0,
        disk_util: 0.0,
        gpus_idle: 0,
        blocked: dead,
        heartbeat_age: if dead {
            SimDuration::from_secs(30)
        } else {
            SimDuration::ZERO
        },
        dead,
        suspect: false,
        tier: rupam_cluster::NodeTier::OnDemand,
        draining: false,
        preempt_risk: 0.0,
    }
}

/// A launch aimed at a node the failure detector declared dead is the
/// canonical corrupted recovery decision: the auditor must flag it even
/// though the scheduler itself claims the round was fine.
#[test]
fn corrupted_recovery_decision_trips_auditor() {
    let cluster = ClusterSpec::homogeneous(2);
    let app = tiny_app();
    let task = TaskRef {
        stage: StageId(0),
        index: 0,
    };
    let pending = vec![PendingTaskView {
        task,
        job: rupam_dag::app::JobId(0),
        template_key: app.stage(StageId(0)).template_key,
        stage_kind: app.stage(StageId(0)).kind,
        attempt_no: 1,
        peak_mem_hint: ByteSize::ZERO,
        gpu_capable: false,
        process_nodes: vec![],
        node_local: vec![],
    }];
    let input = OfferInput {
        now: SimTime::from_secs_f64(20.0),
        cluster: &cluster,
        app: &app,
        nodes: vec![
            node_view(NodeId(0), ByteSize::gib(8), false),
            node_view(NodeId(1), ByteSize::gib(8), true),
        ],
        pending,
        speculatable: vec![],
        job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
        changed: None,
        pending_fresh: None,
    };
    // "recover" the task by launching it straight back onto the corpse
    let corrupted = vec![Command::Launch {
        task,
        node: NodeId(1),
        use_gpu: false,
        speculative: false,
        reason: LaunchReason::FifoSlot,
    }];
    let mut auditor = InvariantAuditor::new(AuditConfig::default());
    let found = auditor.check_round(7, &input, &corrupted, vec![]);
    let codes: Vec<&str> = found.iter().map(|v| v.check).collect();
    assert!(
        codes.contains(&"dead-node-launch"),
        "auditor missed the dead-node launch: {codes:?}"
    );
    // the same decision on the live node is clean
    let fine = vec![Command::Launch {
        task,
        node: NodeId(0),
        use_gpu: false,
        speculative: false,
        reason: LaunchReason::FifoSlot,
    }];
    let mut auditor = InvariantAuditor::new(AuditConfig::default());
    assert!(
        auditor.check_round(8, &input, &fine, vec![]).is_empty(),
        "live-node launch must stay clean"
    );
}
