//! Tenant-scoped scheduling integration (DESIGN.md §15): the
//! FIFO-baseline noop contract, the weighted-fair fairness win, the
//! no-lost-tasks guarantee under quota preemption, and all-or-nothing
//! gang admission — all through the public bench harness.

use rupam::{AllocationPolicy, RupamConfig, TenantSpec};
use rupam_bench::fairness::{build_skewed_stream, contended_cluster, policy_config, solo_means};
use rupam_bench::multitenant::build_stream;
use rupam_bench::{
    run_stream_cfg, run_stream_observed_cfg, run_workload_observed_cfg, Sched,
};
use rupam_exec::{SimConfig, SimOptions};
use rupam_metrics::record::AttemptOutcome;
use rupam_metrics::trace::{LaunchReason, TraceEventKind};
use rupam_workloads::Workload;

/// Digest-only observation: no ring buffer, no auditor — just the
/// rolling FNV digest over every trace event.
fn digest_opts() -> SimOptions {
    SimOptions {
        trace_capacity: Some(0),
        audit: None,
    }
}

/// Tenant *weights* without a fair policy or a quota must not arm the
/// tenant machinery at all: `tenant_aware()` is false and the decision
/// stream is byte-identical to the default scheduler's.
#[test]
fn weights_without_policy_or_quota_are_a_digest_noop() {
    let weights_only = RupamConfig {
        allocation: AllocationPolicy::FifoBaseline,
        tenants: vec![
            TenantSpec {
                weight: 3.0,
                quota: None,
            },
            TenantSpec {
                weight: 1.0,
                quota: None,
            },
        ],
        ..RupamConfig::default()
    };
    assert!(!weights_only.tenant_aware());

    let cluster = rupam_cluster::ClusterSpec::hydra();
    let stream = build_stream(
        &cluster,
        &[Workload::LogisticRegression, Workload::TeraSort],
        20.0,
        101,
    );
    let cfg = SimConfig::default();
    let mut digests = Vec::new();
    for sched in [Sched::Rupam, Sched::RupamWith(weights_only)] {
        let (report, obs) =
            run_stream_observed_cfg(&cluster, &stream, &sched, 101, &digest_opts(), &cfg);
        assert!(report.completed);
        digests.push(obs.trace.expect("digest trace").digest());
    }
    assert_eq!(
        digests[0], digests[1],
        "weights-only config must replay the default decision stream byte-for-byte"
    );
}

/// On the skewed heavy-vs-light stream, weighted-fair must improve
/// Jain's index over per-tenant slowdowns versus the FIFO baseline
/// without regressing mean JCT by more than 10 % (the PR's acceptance
/// bar; on this stream it actually improves).
#[test]
fn weighted_fair_improves_jain_without_jct_regression() {
    let cluster = contended_cluster();
    let seed = 101;
    let stream = build_skewed_stream(seed);
    let solo = solo_means(&cluster, seed);
    let cfg = SimConfig::default();

    let fifo = run_stream_cfg(
        &cluster,
        &stream,
        &Sched::RupamWith(policy_config(AllocationPolicy::FifoBaseline)),
        seed,
        &cfg,
    );
    let wfair = run_stream_cfg(
        &cluster,
        &stream,
        &Sched::RupamWith(policy_config(AllocationPolicy::WeightedFair)),
        seed,
        &cfg,
    );
    assert!(fifo.completed && wfair.completed);

    let fifo_jain = fifo.tenant_jain_slowdown(&solo);
    let wfair_jain = wfair.tenant_jain_slowdown(&solo);
    assert!(
        wfair_jain > fifo_jain,
        "weighted-fair must improve slowdown fairness: {wfair_jain:.3} vs FIFO {fifo_jain:.3}"
    );
    assert!(
        wfair.jct_mean() <= fifo.jct_mean() * 1.10,
        "mean JCT regressed more than 10%: {:.1}s vs FIFO {:.1}s",
        wfair.jct_mean(),
        fifo.jct_mean()
    );
}

/// A tight quota on the heavy tenant forces preemption waves; every
/// victim must re-enter through the lineage path and the stream must
/// still finish every job — no task is ever lost.
#[test]
fn quota_preemption_loses_no_tasks() {
    let cluster = contended_cluster();
    let seed = 101;
    let stream = build_skewed_stream(seed);
    let quota_cfg = RupamConfig {
        allocation: AllocationPolicy::WeightedFair,
        tenants: vec![
            TenantSpec {
                weight: 1.0,
                quota: Some(0.25),
            },
            TenantSpec {
                weight: 1.0,
                quota: None,
            },
        ],
        ..RupamConfig::default()
    };
    assert!(quota_cfg.tenant_aware());
    let sched = Sched::RupamWith(quota_cfg);
    assert_eq!(sched.label(), "rupam-wfair-quota");

    let report = run_stream_cfg(&cluster, &stream, &sched, seed, &SimConfig::default());
    assert!(report.completed, "stream must finish under preemption");
    assert!(
        report.jobs.iter().all(|j| j.jct().is_some()),
        "every stream job must complete despite preemption"
    );
    let preempted = report
        .records
        .iter()
        .filter(|r| r.outcome == AttemptOutcome::QuotaPreempted)
        .count();
    assert!(
        preempted > 0,
        "a 0.25 quota against a 120-wide burst must preempt at least once"
    );
    // every preempted task also has a later successful attempt
    for r in report.records.iter().filter(|r| r.outcome == AttemptOutcome::QuotaPreempted) {
        assert!(
            report
                .records
                .iter()
                .any(|s| s.task == r.task && s.outcome.is_success()),
            "preempted task {:?} never succeeded",
            r.task
        );
    }
}

/// `gang: true` stages (the Gramian BLAS sweep) launch all-or-nothing:
/// the run completes and every member of the gang stage launches with
/// the gang-admission reason, never piecemeal.
#[test]
fn gang_admission_completes_gramian_all_or_nothing() {
    let cluster = rupam_cluster::ClusterSpec::hydra();
    let gang_cfg = RupamConfig {
        gang_admission: true,
        ..RupamConfig::default()
    };
    let sched = Sched::RupamWith(gang_cfg);
    assert_eq!(sched.label(), "rupam-gang");

    let opts = SimOptions {
        trace_capacity: Some(rupam_metrics::trace::DEFAULT_TRACE_CAPACITY),
        audit: None,
    };
    let (report, obs) = run_workload_observed_cfg(
        &cluster,
        Workload::GramianMatrix,
        &sched,
        101,
        &opts,
        &SimConfig::default(),
    );
    assert!(report.completed, "Gramian must finish under gang admission");

    let trace = obs.trace.expect("trace enabled");
    let mut gang_launches = 0usize;
    for ev in trace.iter() {
        if let TraceEventKind::Launch {
            task,
            reason,
            speculative,
            ..
        } = &ev.kind
        {
            let gang_stage = task.stage.index() == 0; // BLAS outer-product stage
            if matches!(reason, LaunchReason::GangAdmission { .. }) {
                gang_launches += 1;
            } else if gang_stage && !speculative {
                // speculative copies ride the ordinary path; first
                // attempts of a gang stage must not
                panic!("gang-stage task {task:?} launched piecemeal via {reason:?}");
            }
        }
    }
    assert!(
        gang_launches > 0,
        "the gang stage must launch through gang admission"
    );
}
