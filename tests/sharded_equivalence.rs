//! Equivalence gate for the sharded node-queue cache: splitting the
//! per-kind rankings across rack (or fixed-size) shards, scoring shards
//! independently and merging winners with the cross-shard suffix-max
//! comparison must take *exactly* the decisions of both the unsharded
//! incremental path and the from-scratch rebuild reference — on every
//! workload, from the 12-node paper cluster up to 256 nodes, under the
//! auditor. Trace digests cover every event ever recorded, so equal
//! digests mean byte-identical decision sequences.

use rupam::config::RupamConfig;
use rupam_bench::multitenant::{build_stream, MEAN_GAP_SECS, TENANTS};
use rupam_bench::{run_stream_observed, run_workload_observed, Sched};
use rupam_cluster::ClusterSpec;
use rupam_exec::SimOptions;
use rupam_workloads::Workload;

/// Unsharded incremental reference: one shard holds every node, so the
/// cross-shard merge degenerates to the single global scan.
fn single_shard() -> Sched {
    Sched::RupamWith(RupamConfig {
        shard_count: 1,
        ..RupamConfig::default()
    })
}

/// A deliberately awkward shard count: does not divide the node count
/// and ignores rack boundaries, so winners regularly straddle shards.
fn seven_shards() -> Sched {
    Sched::RupamWith(RupamConfig {
        shard_count: 7,
        ..RupamConfig::default()
    })
}

/// The rebuild reference (no incremental cache at all).
fn rebuild_reference() -> Sched {
    Sched::RupamWith(RupamConfig {
        incremental_queues: false,
        ..RupamConfig::default()
    })
}

fn shapes() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("hydra12", ClusterSpec::hydra()),
        ("hydra64", ClusterSpec::hydra_mix(48, 8, 8)),
        ("hydra256", ClusterSpec::hydra_mix(192, 32, 32)),
    ]
}

/// Which workloads run on which shape: every workload exercises the
/// small and mid clusters; hydra256 runs the two shuffle-heavy suite
/// members (the offer-round stress cases) to keep the gate's runtime
/// within CI budget.
fn workloads_for(shape: &str) -> Vec<Workload> {
    match shape {
        "hydra256" => vec![Workload::TeraSort, Workload::PageRank],
        _ => Workload::ALL.to_vec(),
    }
}

/// Sharded (rack-auto default) vs single-shard vs rebuild: byte-identical
/// decision traces, identical outcomes, zero audit violations on every
/// path. The audited runs also cross-check the sharded rankings against
/// a rebuild inside `audit_round` every round.
#[test]
fn sharded_path_is_decision_identical_across_suite() {
    for (shape, cluster) in shapes() {
        for w in workloads_for(shape) {
            let (auto, obs_auto) =
                run_workload_observed(&cluster, w, &Sched::Rupam, 707, &SimOptions::audited());
            let (one, obs_one) =
                run_workload_observed(&cluster, w, &single_shard(), 707, &SimOptions::audited());
            let (reb, obs_reb) = run_workload_observed(
                &cluster,
                w,
                &rebuild_reference(),
                707,
                &SimOptions::audited(),
            );
            for (path, obs) in [
                ("auto-sharded", &obs_auto),
                ("single-shard", &obs_one),
                ("rebuild", &obs_reb),
            ] {
                assert!(
                    obs.violations.is_empty(),
                    "{shape}/{w:?} {path}: {:?}",
                    obs.violations
                );
            }
            let d_auto = obs_auto.trace.as_ref().unwrap().digest();
            assert_eq!(
                d_auto,
                obs_one.trace.as_ref().unwrap().digest(),
                "{shape}/{w:?}: sharded vs single-shard traces diverged"
            );
            assert_eq!(
                d_auto,
                obs_reb.trace.as_ref().unwrap().digest(),
                "{shape}/{w:?}: sharded vs rebuild traces diverged"
            );
            assert_eq!(auto.makespan, one.makespan, "{shape}/{w:?}");
            assert_eq!(auto.makespan, reb.makespan, "{shape}/{w:?}");
            assert_eq!(auto.records.len(), reb.records.len());
            assert_eq!(auto.oom_failures, reb.oom_failures);
            assert_eq!(auto.speculative_launched, reb.speculative_launched);
        }
    }
}

/// A shard count that cuts across racks and leaves uneven partitions
/// must still be invisible in the decisions (multi-tenant stream, the
/// heaviest round count in the suite).
#[test]
fn awkward_shard_count_is_decision_identical_on_stream() {
    let cluster = ClusterSpec::hydra();
    let stream = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 909);
    let (auto, obs_auto) = run_stream_observed(
        &cluster,
        &stream,
        &Sched::Rupam,
        909,
        &SimOptions::audited(),
    );
    let (odd, obs_odd) = run_stream_observed(
        &cluster,
        &stream,
        &seven_shards(),
        909,
        &SimOptions::audited(),
    );
    assert!(obs_auto.violations.is_empty(), "{:?}", obs_auto.violations);
    assert!(obs_odd.violations.is_empty(), "{:?}", obs_odd.violations);
    assert_eq!(
        obs_auto.trace.as_ref().unwrap().digest(),
        obs_odd.trace.as_ref().unwrap().digest(),
        "stream decision traces diverged across shard counts"
    );
    assert_eq!(auto.makespan, odd.makespan);
    assert_eq!(
        auto.jobs.iter().map(|j| j.completed_at).collect::<Vec<_>>(),
        odd.jobs.iter().map(|j| j.completed_at).collect::<Vec<_>>()
    );
}
