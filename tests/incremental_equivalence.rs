//! Equivalence gate for the incremental scheduler state: the
//! `O(log n)` path (persistent node rankings, memoised DB lookups,
//! early-exit node picks) must take *exactly* the decisions of the
//! from-scratch rebuild reference, on every workload, across cluster
//! shapes, under the auditor. Trace digests cover every event ever
//! recorded, so equal digests mean byte-identical decision sequences.

use rupam::config::RupamConfig;
use rupam_bench::multitenant::{build_stream, MEAN_GAP_SECS, TENANTS};
use rupam_bench::{run_stream_observed, run_workload_observed, Sched};
use rupam_cluster::ClusterSpec;
use rupam_exec::SimOptions;
use rupam_workloads::Workload;

/// The reference: identical policy, but rebuilding and re-sorting every
/// queue each round and re-reading the DB on every probe.
fn rebuild_reference() -> Sched {
    Sched::RupamWith(RupamConfig {
        incremental_queues: false,
        ..RupamConfig::default()
    })
}

fn shapes() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("hydra", ClusterSpec::hydra()),
        ("homogeneous-8", ClusterSpec::homogeneous(8)),
        ("hydra-mix-2-1-1", ClusterSpec::hydra_mix(2, 1, 1)),
    ]
}

/// Full workload suite × 3 cluster shapes: byte-identical decision
/// traces, identical outcomes, zero audit violations on both paths (the
/// incremental run also cross-checks its rankings against a rebuild
/// inside `audit_round` every round).
#[test]
fn incremental_path_is_decision_identical_across_suite() {
    for (shape, cluster) in shapes() {
        for w in Workload::ALL {
            let (inc, obs_inc) =
                run_workload_observed(&cluster, w, &Sched::Rupam, 707, &SimOptions::audited());
            let (reb, obs_reb) = run_workload_observed(
                &cluster,
                w,
                &rebuild_reference(),
                707,
                &SimOptions::audited(),
            );
            assert!(
                obs_inc.violations.is_empty(),
                "{shape}/{w:?} incremental: {:?}",
                obs_inc.violations
            );
            assert!(
                obs_reb.violations.is_empty(),
                "{shape}/{w:?} rebuild: {:?}",
                obs_reb.violations
            );
            assert_eq!(
                obs_inc.trace.as_ref().unwrap().digest(),
                obs_reb.trace.as_ref().unwrap().digest(),
                "{shape}/{w:?}: decision traces diverged"
            );
            assert_eq!(
                inc.makespan, reb.makespan,
                "{shape}/{w:?}: makespan drifted"
            );
            assert_eq!(inc.records.len(), reb.records.len());
            assert_eq!(inc.oom_failures, reb.oom_failures);
            assert_eq!(inc.speculative_launched, reb.speculative_launched);
        }
    }
}

/// The multi-tenant stream (merged applications, cross-job DB reuse,
/// thousands of rounds) is the configuration the optimisation targets —
/// it must stay decision-identical too.
#[test]
fn incremental_stream_is_decision_identical() {
    let cluster = ClusterSpec::hydra();
    let stream = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 909);
    let (inc, obs_inc) = run_stream_observed(
        &cluster,
        &stream,
        &Sched::Rupam,
        909,
        &SimOptions::audited(),
    );
    let (reb, obs_reb) = run_stream_observed(
        &cluster,
        &stream,
        &rebuild_reference(),
        909,
        &SimOptions::audited(),
    );
    assert!(obs_inc.violations.is_empty(), "{:?}", obs_inc.violations);
    assert!(obs_reb.violations.is_empty(), "{:?}", obs_reb.violations);
    assert_eq!(
        obs_inc.trace.as_ref().unwrap().digest(),
        obs_reb.trace.as_ref().unwrap().digest(),
        "stream decision traces diverged"
    );
    assert_eq!(inc.makespan, reb.makespan);
    assert_eq!(inc.records.len(), reb.records.len());
    assert_eq!(
        inc.jobs.iter().map(|j| j.completed_at).collect::<Vec<_>>(),
        reb.jobs.iter().map(|j| j.completed_at).collect::<Vec<_>>()
    );
}
