//! Elastic-capacity integration tests: the spot tier's no-op guarantee,
//! deterministic churn, cost accounting, and scripted preemptions.
//!
//! The central promises under test:
//!
//! * An **empty elasticity script is a strict no-op** — no controller
//!   event is scheduled, no RNG stream is drawn from, and decision
//!   traces are byte-identical to a run built without the elastic
//!   layer (the same guarantee the faults subsystem makes).
//! * **Churn loses no tasks**: provisioning, idle decommissions and
//!   price-correlated preemption drains all route node loss through the
//!   lineage-recompute recovery path, so every run completes.
//! * **Same seed ⇒ same churn**: the price path and preemption draws
//!   live on a dedicated RNG stream keyed by the run seed.

use rupam::config::RupamConfig;
use rupam_bench::multitenant::build_stream;
use rupam_bench::{
    run_stream_observed_cfg, run_workload_cfg, run_workload_observed, run_workload_observed_cfg,
    Sched,
};
use rupam_cluster::ClusterSpec;
use rupam_elastic::{ElasticConfig, SpotPolicy};
use rupam_exec::{SimConfig, SimOptions};
use rupam_faults::FaultScript;
use rupam_workloads::Workload;

fn digest(obs: &rupam_exec::SimObservation) -> u64 {
    obs.trace.as_ref().expect("trace enabled").digest()
}

/// The committed CI elasticity script must keep parsing — it is both
/// the chaos-smoke input and the README's documented TOML dialect.
#[test]
fn committed_smoke_script_parses() {
    let cfg = ElasticConfig::parse_toml(include_str!("../spot-smoke.toml"))
        .expect("spot-smoke.toml parses");
    assert_eq!(cfg.pools.len(), 1);
    let members: Vec<usize> = cfg.pools[0].nodes.iter().map(|n| n.index()).collect();
    assert_eq!(members, vec![8, 9, 10, 11]);
    assert!(!cfg.is_empty());
}

/// A contended spot-tail scenario: a burst of jobs arriving close
/// together on hydra, with the four weakest nodes in a cheap, churning
/// spot pool that scales up on any backlog at all.
fn churny_config() -> SimConfig {
    let mut elastic = ElasticConfig::spot_tail(12, 4, SpotPolicy::Greedy);
    elastic.check_secs = 2.0;
    elastic.scale_up_backlog = 0.0;
    elastic.scale_down_idle_secs = 10.0;
    elastic.pools[0].preempt_base = 0.02;
    elastic.pools[0].volatility = 0.08;
    SimConfig::with_elastic(elastic)
}

/// A job burst dense enough to leave pending tasks at check instants.
fn churny_stream(cluster: &ClusterSpec, seed: u64) -> rupam_dag::MergedStream {
    build_stream(
        cluster,
        &[
            Workload::TeraSort,
            Workload::Sql,
            Workload::PageRank,
            Workload::KMeans,
            Workload::TeraSort,
            Workload::TriangleCount,
        ],
        2.0,
        seed,
    )
}

/// Empty script ⇒ the elastic layer never constructs a controller,
/// never schedules a check, never draws from its RNG stream:
/// byte-identical decisions to the default configuration, across the
/// whole suite.
#[test]
fn empty_elastic_script_is_a_strict_noop() {
    let cluster = ClusterSpec::hydra();
    let empty =
        SimConfig::with_elastic(ElasticConfig::parse_toml("").expect("empty script parses"));
    assert!(empty.elastic.is_empty());
    for w in Workload::ALL {
        let (plain_rep, plain) =
            run_workload_observed(&cluster, w, &Sched::Rupam, 707, &SimOptions::audited());
        let (empty_rep, empty_obs) = run_workload_observed_cfg(
            &cluster,
            w,
            &Sched::Rupam,
            707,
            &SimOptions::audited(),
            &empty,
        );
        assert_eq!(
            digest(&plain),
            digest(&empty_obs),
            "{w:?}: empty elasticity script changed the decision trace"
        );
        assert_eq!(plain_rep.makespan, empty_rep.makespan);
        assert_eq!(
            empty_rep.cost,
            Default::default(),
            "{w:?}: spurious cost ledger"
        );
    }
}

/// The risk discount is driven entirely by the published per-node risk,
/// which is 0.0 without an elastic tier — so any `spot_risk_penalty`
/// value leaves a non-elastic run's decisions byte-identical.
#[test]
fn risk_penalty_is_a_noop_without_spot_pools() {
    let cluster = ClusterSpec::hydra();
    let blind = RupamConfig {
        spot_risk_penalty: 0.0,
        ..RupamConfig::default()
    };
    let paranoid = RupamConfig {
        spot_risk_penalty: 25.0,
        ..RupamConfig::default()
    };
    let (_, base) = run_workload_observed(
        &cluster,
        Workload::TeraSort,
        &Sched::Rupam,
        707,
        &SimOptions::audited(),
    );
    for cfg in [blind, paranoid] {
        let (_, obs) = run_workload_observed(
            &cluster,
            Workload::TeraSort,
            &Sched::RupamWith(cfg),
            707,
            &SimOptions::audited(),
        );
        assert_eq!(
            digest(&base),
            digest(&obs),
            "risk penalty must not perturb a fixed-fleet run"
        );
    }
}

/// Same seed + same elasticity script ⇒ identical decision traces and
/// identical cost ledgers, with the churn actually firing; a different
/// seed walks a different price path.
#[test]
fn elastic_churn_is_seed_deterministic() {
    let cluster = ClusterSpec::hydra();
    let config = churny_config();
    let stream = churny_stream(&cluster, 404);
    let run = |seed: u64| {
        run_stream_observed_cfg(
            &cluster,
            &stream,
            &Sched::Rupam,
            seed,
            &SimOptions::audited(),
            &config,
        )
    };
    let (rep_a, obs_a) = run(404);
    let (rep_b, obs_b) = run(404);
    assert_eq!(digest(&obs_a), digest(&obs_b), "same seed, same churn");
    assert_eq!(rep_a.cost, rep_b.cost, "same seed, same ledger");
    assert!(rep_a.completed, "churn must not stall the stream");
    assert!(
        rep_a.cost.provisions > 0,
        "contended stream must scale into the spot pool: {:?}",
        rep_a.cost
    );
    assert!(rep_a.cost.spot_cost > 0.0, "spot node-seconds must bill");
    let (_, obs_c) = run(405);
    assert_ne!(
        digest(&obs_a),
        digest(&obs_c),
        "a different seed must walk a different price path"
    );
}

/// Every task survives the churn: preemption drains kill running
/// attempts and drop finished map outputs, and all of it must be
/// re-executed to completion (the sim's `completed` flag covers every
/// job of the stream).
#[test]
fn preemption_churn_loses_no_tasks() {
    let cluster = ClusterSpec::hydra();
    let mut config = churny_config();
    // push preemptions hard: every check preempts ~each active spot
    // node with 20 % probability
    config.elastic.pools[0].preempt_base = 0.2;
    config.elastic.pools[0].notice_secs = 2.0;
    let stream = churny_stream(&cluster, 505);
    let (report, _) = run_stream_observed_cfg(
        &cluster,
        &stream,
        &Sched::Rupam,
        505,
        &SimOptions::audited(),
        &config,
    );
    assert!(report.completed, "every job must finish despite churn");
    assert!(
        report.cost.preemptions > 0,
        "the aggressive pool must actually preempt: {:?}",
        report.cost
    );
    assert_eq!(
        report.faults.preemptions, report.cost.preemptions,
        "fault statistics and the cost ledger count the same drains"
    );
}

/// A scripted `preempt` fault on a fixed-fleet node: drain notice, then
/// the node goes down the crash path and the run still completes (the
/// engine treats capacity reclaim exactly like a crash at fire time).
#[test]
fn scripted_preemption_drains_then_reclaims() {
    let cluster = ClusterSpec::hydra();
    let script =
        FaultScript::parse_toml("[[fault]]\nat = 5.0\nnode = 3\nkind = \"preempt\"\nnotice = 4.0")
            .expect("scripted preempt parses");
    let config = SimConfig::with_faults(script);
    let report = run_workload_cfg(&cluster, Workload::TeraSort, &Sched::Rupam, 101, &config);
    assert!(report.completed, "reclaim must not sink the run");
    assert_eq!(report.faults.preemptions, 1, "exactly one notice fired");
}
