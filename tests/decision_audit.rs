//! Integration tests of the decision-trace / invariant-audit layer: the
//! real schedulers must run clean under the auditor, every launch must
//! carry a reason, runs must be bit-identical on replay, and a
//! deliberately corrupted scheduler must be caught.

use rupam_bench::multitenant::{build_stream, MEAN_GAP_SECS, TENANTS};
use rupam_bench::{run_stream_observed, run_workload_observed, Sched};
use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, JobId, Stage, StageId};
use rupam_exec::scheduler::{Command, OfferInput, Scheduler};
use rupam_exec::{simulate_observed, AuditConfig, SimConfig, SimInput, SimOptions};
use rupam_metrics::record::TaskRecord;
use rupam_metrics::trace::TraceEventKind;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;
use rupam_workloads::Workload;

/// Both production schedulers satisfy every launch invariant on real
/// workloads, with the auditor running on every offer round.
#[test]
fn production_schedulers_run_clean_under_audit() {
    let cluster = ClusterSpec::hydra();
    for w in [Workload::TeraSort, Workload::PageRank, Workload::Sql] {
        for sched in [Sched::Spark, Sched::Rupam] {
            let (report, obs) =
                run_workload_observed(&cluster, w, &sched, 101, &SimOptions::audited());
            assert!(
                obs.violations.is_empty(),
                "{} on {:?}: {:?}",
                sched.label(),
                w,
                obs.violations
            );
            let trace = obs.trace.as_ref().expect("audited runs keep a trace");
            // every launch event carries a machine-readable reason code
            let launches = trace
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Launch { .. }))
                .count();
            assert!(launches > 0, "{} on {:?} never launched", sched.label(), w);
            let reasons: usize = trace.reason_histogram().iter().map(|(_, n)| n).sum();
            assert_eq!(reasons, launches);
            assert!(report.completed, "{} on {:?} must finish", sched.label(), w);
        }
    }
}

/// Same cluster, workload and seed ⇒ identical reports and identical
/// trace digests, for both schedulers. The digest covers every event
/// ever recorded (even ones evicted from the ring), so equal digests
/// mean the two runs took the same decisions in the same order.
#[test]
fn replays_are_bit_identical() {
    let cluster = ClusterSpec::hydra();
    for sched in [Sched::Spark, Sched::Rupam] {
        let run = || {
            run_workload_observed(
                &cluster,
                Workload::KMeans,
                &sched,
                202,
                &SimOptions::audited(),
            )
        };
        let (a, obs_a) = run();
        let (b, obs_b) = run();
        assert_eq!(a.makespan, b.makespan, "{} makespan drifted", sched.label());
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.oom_failures, b.oom_failures);
        assert_eq!(a.executor_losses, b.executor_losses);
        assert_eq!(a.speculative_launched, b.speculative_launched);
        let (ta, tb) = (obs_a.trace.unwrap(), obs_b.trace.unwrap());
        assert_eq!(ta.recorded(), tb.recorded());
        assert_eq!(
            ta.digest(),
            tb.digest(),
            "{} decision traces diverged",
            sched.label()
        );
    }
}

/// A 4-tenant online stream runs audit-clean (including the no-launch-
/// before-arrival invariant) under all three schedulers, and every
/// tenant gets a completion time.
#[test]
fn multi_tenant_stream_runs_clean_under_audit() {
    let cluster = ClusterSpec::hydra();
    let stream = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 101);
    assert!(stream.jobs.len() >= 4);
    for sched in [Sched::Fifo, Sched::Spark, Sched::Rupam] {
        let (report, obs) =
            run_stream_observed(&cluster, &stream, &sched, 101, &SimOptions::audited());
        assert!(
            obs.violations.is_empty(),
            "{} violated invariants on the stream: {:?}",
            sched.label(),
            obs.violations
        );
        assert!(
            report.completed,
            "{} left the stream unfinished",
            sched.label()
        );
        assert_eq!(report.jobs.len(), stream.jobs.len());
        for j in &report.jobs {
            let jct = j.jct().unwrap_or_else(|| {
                panic!("{}: job {} has no completion time", sched.label(), j.name)
            });
            assert!(jct > SimDuration::ZERO);
        }
        assert!(report.jct_p95() >= report.jct_mean());
        // no tenant's tasks may launch before it arrived
        let trace = obs.trace.as_ref().expect("audited runs keep a trace");
        for e in trace.iter() {
            if let TraceEventKind::Launch { job, .. } = e.kind {
                assert!(
                    e.at >= stream.jobs[job.index()].arrival,
                    "{}: launch for job {job} at {} precedes its arrival",
                    sched.label(),
                    e.at
                );
            }
        }
    }
}

/// Same stream, same seed ⇒ byte-identical decision traces: the
/// multi-tenant path preserves the replay guarantee.
#[test]
fn multi_tenant_replays_are_bit_identical() {
    let cluster = ClusterSpec::hydra();
    for sched in [Sched::Spark, Sched::Rupam] {
        let run = || {
            let stream = build_stream(&cluster, &TENANTS, MEAN_GAP_SECS, 303);
            run_stream_observed(&cluster, &stream, &sched, 303, &SimOptions::audited())
        };
        let (a, obs_a) = run();
        let (b, obs_b) = run();
        assert_eq!(a.makespan, b.makespan, "{} makespan drifted", sched.label());
        assert_eq!(a.jct_secs(), b.jct_secs(), "{} JCTs drifted", sched.label());
        let (ta, tb) = (obs_a.trace.unwrap(), obs_b.trace.unwrap());
        assert_eq!(ta.recorded(), tb.recorded());
        assert_eq!(
            ta.digest(),
            tb.digest(),
            "{} multi-tenant decision traces diverged",
            sched.label()
        );
    }
}

/// A scheduler that mirrors its inner scheduler's decisions but
/// duplicates the first launch of the round — a double launch the
/// engine would otherwise silently drop on the floor.
struct DoubleLauncher<S>(S, bool);

impl<S: Scheduler> Scheduler for DoubleLauncher<S> {
    fn name(&self) -> &str {
        "double-launcher"
    }
    fn executor_memory(&self, cluster: &ClusterSpec, node: rupam_cluster::NodeId) -> ByteSize {
        self.0.executor_memory(cluster, node)
    }
    fn decision_cost(&self) -> SimDuration {
        self.0.decision_cost()
    }
    fn on_app_start(&mut self, app: &Application, cluster: &ClusterSpec) {
        self.0.on_app_start(app, cluster);
    }
    fn on_stage_ready(&mut self, stage: &Stage, now: SimTime) {
        self.0.on_stage_ready(stage, now);
    }
    fn on_job_submitted(&mut self, job: JobId, stages: &[StageId], now: SimTime) {
        self.0.on_job_submitted(job, stages, now);
    }
    fn on_task_finished(&mut self, record: &TaskRecord, now: SimTime) {
        self.0.on_task_finished(record, now);
    }
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let mut cmds = self.0.offer_round(input);
        if !self.1 {
            if let Some(first @ Command::Launch { .. }) = cmds.first().cloned() {
                self.1 = true;
                cmds.push(first);
            }
        }
        cmds
    }
}

/// Meta-test: the auditor is not a rubber stamp — corrupt one decision
/// and it must fire.
#[test]
fn auditor_flags_a_corrupted_decision() {
    let cluster = ClusterSpec::hydra();
    let (app, layout) = Workload::TeraSort.build(&cluster, &RngFactory::new(7));
    let config = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &config,
        seed: 7,
    };
    let mut sched = DoubleLauncher(rupam::RupamScheduler::with_defaults(), false);
    let opts = SimOptions {
        trace_capacity: None,
        audit: Some(AuditConfig::default()),
    };
    let (_, obs) = simulate_observed(&input, &mut sched, &opts);
    assert!(
        obs.violations.iter().any(|v| v.check == "double-launch"),
        "auditor missed the duplicated launch: {:?}",
        obs.violations
    );
}
