//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the harness surface this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `sample_size`, `b.iter(..)`,
//! [`black_box`]) with a simple wall-clock measurement loop: per sample,
//! the routine runs once and the median/mean/min of the samples is
//! printed in criterion-like format. No statistical regression analysis,
//! no HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, once per sample, after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up (also primes caches/allocators)
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.durations.is_empty() {
        println!("{id:<40} (no measurement: bencher.iter was never called)");
        return;
    }
    let mut sorted = b.durations.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{id:<40} time: [min {} median {} mean {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len(),
    );
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; this subset measures whole
        // simulation runs, so a leaner default keeps `cargo bench` quick.
        // Groups override via `sample_size`.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure one named routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Upstream calls this after all groups; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure one named routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Benchmark identifier with a parameter, e.g. `BenchmarkId::new("f", 3)`.
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Bundle bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_inherits_and_overrides() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("inner", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
