//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Semantics match the upstream crate where this workspace relies on them:
//! `lock()` never returns a poison error (a poisoned std lock is unwrapped
//! into its inner guard, matching parking_lot's no-poisoning behaviour).

/// Guard type (std's guard — API-identical for Deref/DerefMut use).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to take the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read guard is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the exclusive write guard is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
