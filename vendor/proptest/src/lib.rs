//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`Strategy`] with `prop_map`,
//! range/tuple/`any`/`collection::vec` strategies, [`test_runner::TestRunner`]
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! case number and message, not a minimised input) and no persisted
//! regression files (`*.proptest-regressions` files are ignored). Case
//! generation is deterministic per test (fixed seed), so failures
//! reproduce exactly across runs — which is what this repository's
//! determinism-first test suite actually relies on.

pub mod test_runner {
    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator (deterministic across runs).
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x70_72_6f_70_74_65_73_74,
            } // "proptest"
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Runner configuration (field-compatible subset of upstream's).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    /// Upstream re-exports the config under this name too.
    pub type Config = ProptestConfig;

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256 cases; without shrinking each case
            // is pure generation + run, so the same count stays cheap.
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure (from `prop_assert!` or an explicit fail).
        Fail(String),
        /// Input rejected (counted, not fatal unless everything rejects).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion-failure error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input-rejection error.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Terminal failure of a whole property run.
    #[derive(Clone, Debug)]
    pub struct TestError {
        /// 0-based index of the failing case.
        pub case: u32,
        /// The failure message.
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "property failed at case {}: {}", self.case, self.message)
        }
    }

    impl std::error::Error for TestError {}

    /// Drives a strategy through `config.cases` runs of a property.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Runner with an explicit config (deterministic generation).
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::deterministic(),
            }
        }

        /// Upstream's fixed-seed constructor; identical here since every
        /// runner is deterministic.
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// Run `test` against `config.cases` generated values.
        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
        where
            S: crate::strategy::Strategy + ?Sized,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            let mut rejects = 0u32;
            let mut case = 0u32;
            while case < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.cases.saturating_mul(8).max(1024) {
                            return Err(TestError {
                                case,
                                message: "too many rejected inputs".into(),
                            });
                        }
                    }
                    Err(TestCaseError::Fail(message)) => {
                        return Err(TestError { case, message });
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (no shrinking in this subset).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Generate a value, then generate from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap {
                source: self,
                derive: f,
            }
        }

        /// Type-erase the strategy (upstream's `.boxed()`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        derive: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.derive)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Construct that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy produced by [`any`](crate::arbitrary::any).
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! arb_via {
        ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }

    arb_via! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        isize => |rng| rng.next_u64() as isize;
        // finite floats only, like upstream's default f64 strategy domain
        f32 => |rng| ((rng.unit_f64() - 0.5) * 2e6) as f32;
        f64 => |rng| (rng.unit_f64() - 0.5) * 2e12;
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Upstream exposes combinators under `prop::…` inside the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} ({:?} == {:?})", format!($($fmt)*), l, r);
    }};
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// item becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner
                .run(
                    &($($strat,)+),
                    |($($arg,)+)| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    },
                )
                .unwrap();
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_reports_failure_case() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 64,
            ..Default::default()
        });
        let err = runner
            .run(&(0u64..100,), |(x,)| {
                prop_assert!(x < 90, "too big: {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.starts_with("too big"), "{err:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0.0f64..1.0, crate::arbitrary::any::<bool>());
        let a: Vec<_> = {
            let mut rng = TestRng::deterministic();
            (0..32).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::deterministic();
            (0..32).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro form compiles, sees config, and runs bodies.
        #[test]
        fn macro_form_works(x in 1usize..50, ys in prop::collection::vec(0u32..10, 0..5)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(ys.len() < 5);
            for y in ys {
                prop_assert!(y < 10);
            }
        }
    }

    proptest! {
        /// Default-config form, single argument, prop_map.
        #[test]
        fn mapped_strategy(doubled in (1u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
