//! Offline, API-compatible subset of `crossbeam`: MPMC-ish channels and
//! scoped threads, backed by `std::sync::mpsc` and `std::thread::scope`.
//!
//! Only the surface this workspace uses is provided:
//! `crossbeam::channel::{unbounded, Sender, Receiver}` and
//! `crossbeam::thread::scope(|s| s.spawn(|_| …))`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; errors only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block for the next value; errors once the channel is empty and
        /// every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error payload of a panicked child thread.
    pub type Error = Box<dyn std::any::Any + Send + 'static>;

    /// Scope handle passed to [`scope`]'s closure and to spawned children.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the child and return its result.
        pub fn join(self) -> Result<T, Error> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child; like crossbeam, the closure receives the scope so
        /// children can spawn grandchildren.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope; every spawned child is joined before `scope`
    /// returns. A panic in any child surfaces as `Err`, matching
    /// crossbeam's contract (std's scope would propagate the panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Error>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fifo_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scope_joins_children() {
        let mut slots = vec![0u64; 8];
        thread::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
