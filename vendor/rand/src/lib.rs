//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand`'s API it actually uses:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is a SplitMix64 counter stream —
//! deterministic, `no_std`-simple, and statistically sound for the
//! simulation's workload-jitter / data-placement use (it is the same
//! finalizer the workspace already uses to derive per-label streams).
//!
//! Values differ from upstream `rand`'s ChaCha-based `StdRng`; experiment
//! calibration in this repository is against *this* generator, which is
//! pinned by `Cargo.lock` and vendored source rather than a registry
//! release.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; here 32 bytes).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the only constructor this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling from a range — mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> [0, 1)
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impl {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

signed_range_impl!(i32: u32, i64: u64, isize: usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                // draw in [0, 1] using 53 bits over an inclusive lattice
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// User-facing extension trait (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 counter stream).
    ///
    /// Not upstream's ChaCha12 — see the crate docs. Cloning forks the
    /// stream state, exactly like upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GAMMA);
            mix(self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(first))
        }

        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            // pre-mix so that small consecutive seeds yield unrelated
            // streams
            StdRng {
                state: mix(state ^ GAMMA),
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers — the `choose`/`shuffle` subset of upstream's trait.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = r.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let g: f64 = r.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&g));
        }
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo_hits = 0;
        let mut hi_hits = 0;
        for _ in 0..10_000 {
            let f: f64 = r.gen_range(0.0..1.0);
            if f < 0.1 {
                lo_hits += 1;
            }
            if f > 0.9 {
                hi_hits += 1;
            }
        }
        assert!(
            lo_hits > 500 && hi_hits > 500,
            "not uniform: {lo_hits} {hi_hits}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([42].choose(&mut r).is_some());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
